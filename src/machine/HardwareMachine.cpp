//===- machine/HardwareMachine.cpp - Instruction-level Mx86 -------------------===//

#include "machine/HardwareMachine.h"

#include "support/Check.h"
#include "support/Text.h"

#include <set>

using namespace ccal;

HardwareMachine::HardwareMachine(MachineConfigPtr CfgIn)
    : Cfg(std::move(CfgIn)) {
  CCAL_CHECK(Cfg && Cfg->Layer && Cfg->Program && Cfg->Program->Linked,
             "machine config needs a layer and a linked program");
  CCAL_CHECK(!Cfg->Model || !Cfg->Model->weak(),
             "the hardware machine is SC-only; run weak-memory "
             "verification on the query-point MultiCoreMachine");
  std::vector<std::int64_t> Image = Cfg->Program->initialGlobals();
  for (const auto &[Id, Items] : Cfg->Work) {
    auto [It, Inserted] = Cpus.emplace(Id, Cpu(Cfg->Program, Image));
    CCAL_CHECK(Inserted, "duplicate CPU id");
    It->second.Done = Items.empty();
  }
}

void HardwareMachine::fault(ThreadId Id, const std::string &Msg) {
  if (Err.empty())
    Err = strFormat("CPU %u: %s", Id, Msg.c_str());
}

bool HardwareMachine::allIdle() const {
  for (const auto &[Id, C] : Cpus)
    if (!C.Done)
      return false;
  return true;
}

std::vector<ThreadId> HardwareMachine::schedulable() const {
  std::vector<ThreadId> Out;
  for (const auto &[Id, C] : Cpus) {
    if (C.Done)
      continue;
    if (C.AtPrim) {
      const Primitive *P = Cfg->Layer->lookup(C.Machine.primKind());
      if (P && P->Shared) {
        PrimCall Call;
        Call.Tid = Id;
        Call.Args = C.Machine.primArgs();
        Call.L = &GlobalLog;
        Call.LocalMem = &C.Globals;
        std::optional<PrimResult> Res = P->Sem(Call);
        if (Res && Res->Blocked)
          continue;
      }
    }
    Out.push_back(Id);
  }
  return Out;
}

bool HardwareMachine::step(ThreadId Id) {
  if (!ok())
    return false;
  auto It = Cpus.find(Id);
  CCAL_CHECK(It != Cpus.end(), "step: unknown CPU");
  Cpu &C = It->second;
  CCAL_CHECK(!C.Done, "step: CPU has no work left");

  const std::vector<CpuWorkItem> &Items = Cfg->Work.at(Id);
  if (!C.Active) {
    const CpuWorkItem &Item = Items[C.NextWork];
    C.Machine.start(Item.Fn, Item.Args);
    C.Active = true;
  }

  if (C.AtPrim) {
    const Primitive *P = Cfg->Layer->lookup(C.Machine.primKind());
    if (!P) {
      fault(Id, "call to primitive '" + C.Machine.primName() +
                    "' not provided by layer " + Cfg->Layer->name());
      return false;
    }
    PrimCall Call;
    Call.Tid = Id;
    Call.Args = C.Machine.primArgs();
    Call.L = &GlobalLog;
    Call.LocalMem = &C.Globals;
    std::optional<PrimResult> Res = P->Sem(Call);
    if (!Res) {
      fault(Id, "primitive '" + P->Name + "' got stuck");
      return false;
    }
    CCAL_CHECK(!Res->Blocked, "step: blocked CPUs are not schedulable");
    CCAL_CHECK(P->Shared || Res->Events.empty(),
               "private primitives must not emit events");
    logAppendAll(GlobalLog, Res->Events);
    for (auto [Addr, V] : Res->LocalWrites) {
      CCAL_CHECK(Addr >= 0 && static_cast<size_t>(Addr) < C.Globals.size(),
                 "primitive local write out of range");
      C.Globals[static_cast<size_t>(Addr)] = V;
    }
    C.Machine.resumePrim(Res->Ret);
    C.AtPrim = false;
    return true;
  }

  // One hardware cycle: a single instruction.
  bool Exhausted = false;
  Vm::Status St = C.Machine.runBounded(C.Globals, 1, Exhausted);
  if (Exhausted)
    return true; // instruction executed; still running
  if (St == Vm::Status::Error) {
    fault(Id, C.Machine.error());
    return false;
  }
  if (St == Vm::Status::AtPrim) {
    C.AtPrim = true; // the primitive itself runs on this CPU's next cycle
    return true;
  }
  CCAL_CHECK(St == Vm::Status::Done, "unexpected VM status");
  C.Returns.push_back(C.Machine.result());
  C.Active = false;
  if (++C.NextWork >= Items.size())
    C.Done = true;
  return true;
}

Footprint HardwareMachine::stepFootprint(ThreadId Id) const {
  auto It = Cpus.find(Id);
  if (It == Cpus.end() || !It->second.AtPrim)
    return Footprint(); // one instruction: CPU-local only
  const Primitive *P = Cfg->Layer->lookup(It->second.Machine.primKind());
  if (!P)
    return Footprint::opaque();
  if (!P->Shared)
    return Footprint(); // private primitives touch only local memory
  return P->Foot;
}

Footprint HardwareMachine::eventFootprint(const Event &E) const {
  return Cfg->Layer->footprintOf(E.Kind);
}

std::map<ThreadId, std::vector<std::int64_t>>
HardwareMachine::returns() const {
  std::map<ThreadId, std::vector<std::int64_t>> Out;
  for (const auto &[Id, C] : Cpus)
    Out.emplace(Id, C.Returns);
  return Out;
}

std::uint64_t HardwareMachine::snapshotHash() const {
  Hasher H(hashLog(GlobalLog));
  H.u64(Cpus.size());
  for (const auto &[Id, C] : Cpus)
    H.u64(Id)
        .u64(C.Machine.stateHash())
        .i64s(C.Globals)
        .u64(C.NextWork)
        .u64(static_cast<std::uint64_t>(C.Active))
        .u64(static_cast<std::uint64_t>(C.AtPrim))
        .u64(static_cast<std::uint64_t>(C.Done))
        .i64s(C.Returns);
  return H.value();
}

std::size_t HardwareMachine::snapshotBytes() const {
  std::size_t B = sizeof(HardwareMachine) + GlobalLog.snapshotCopyBytes();
  for (const auto &[Id, C] : Cpus) {
    (void)Id;
    B += sizeof(Cpu) + (C.Globals.size() + C.Returns.size()) *
                           sizeof(std::int64_t);
  }
  return B;
}

bool HardwareMachine::sameSnapshot(const HardwareMachine &O) const {
  if (Cfg.get() != O.Cfg.get() || Err != O.Err ||
      GlobalLog != O.GlobalLog || Cpus.size() != O.Cpus.size())
    return false;
  auto It = O.Cpus.begin();
  for (const auto &[Id, C] : Cpus) {
    const auto &[OId, OC] = *It++;
    if (Id != OId || C.NextWork != OC.NextWork || C.Active != OC.Active ||
        C.AtPrim != OC.AtPrim || C.Done != OC.Done ||
        C.Returns != OC.Returns || C.Globals != OC.Globals ||
        !C.Machine.sameState(OC.Machine))
      return false;
  }
  return true;
}

MulticoreLinkReport ccal::checkMulticoreLinking(MachineConfigPtr Cfg,
                                                unsigned FairnessBound,
                                                std::uint64_t MaxSchedules,
                                                bool CheckExactness) {
  MulticoreLinkReport Report;

  // Layer machine (query-point interleaving): the small side; collect.
  ExploreOptions LayerOpts;
  LayerOpts.FairnessBound = 1u << 20; // no spinning assumed at this level
  LayerOpts.MaxSchedules = MaxSchedules;
  ExploreResult LayerRes = exploreMachine(Cfg, LayerOpts);
  if (!LayerRes.Ok) {
    Report.Counterexample = "layer machine violation: " + LayerRes.Violation;
    return Report;
  }
  // A capped layer outcome set would make genuine hardware outcomes look
  // inadmissible; fail closed before comparing.
  if (!LayerRes.Complete) {
    Report.Coverage =
        "layer exploration truncated: " + LayerRes.Truncation;
    Report.Counterexample =
        "layer-machine exploration is incomplete (" + LayerRes.Truncation +
        "): the admitted outcome set may be silently capped; raise the "
        "truncating budget and re-run";
    return Report;
  }
  Report.LayerComplete = true;

  OutcomeSet LayerSet;
  for (const Outcome &O : LayerRes.Outcomes)
    LayerSet.insert(O);

  // Hardware machine (instruction interleaving): stream and match.
  std::uint64_t HwOutcomes = 0, Obligations = 0;
  OutcomeSet HwSet;
  GenericExploreOptions<HardwareMachine> HwOpts;
  HwOpts.FairnessBound = FairnessBound;
  HwOpts.MaxSchedules = MaxSchedules;
  HwOpts.MaxSteps = 65536;
  HwOpts.OnOutcome = [&](const Outcome &O) -> std::string {
    ++HwOutcomes;
    HwSet.insert(O);
    if (!LayerSet.contains(O))
      return strFormat("hardware outcome not admitted by the layer "
                       "machine\n  log: %s",
                       logToString(O.FinalLog).c_str());
    ++Obligations;
    return "";
  };
  HardwareMachine Root(Cfg);
  ExploreResult HwRes = exploreGeneric(Root, HwOpts);

  Report.HardwareSchedules = HwRes.SchedulesExplored;
  Report.LayerSchedules = LayerRes.SchedulesExplored;
  Report.HardwareOutcomes = HwOutcomes;
  Report.LayerOutcomes = LayerRes.Outcomes.size();
  Report.ObligationsChecked = Obligations;
  if (!HwRes.Ok) {
    Report.Counterexample =
        "hardware machine violation: " + HwRes.Violation;
    return Report;
  }
  // Thm 3.1 quantifies over every hardware schedule; a truncated sweep
  // checked only a prefix of them, so it must not report Holds.
  if (!HwRes.Complete) {
    Report.Coverage =
        "hardware exploration truncated: " + HwRes.Truncation;
    Report.Counterexample =
        "hardware-machine exploration is incomplete (" + HwRes.Truncation +
        "): only a prefix of the instruction interleavings was checked; "
        "raise the truncating budget and re-run";
    return Report;
  }
  Report.HardwareComplete = true;
  Report.Coverage = "exhaustive";
  // Sanity bonus: the reduction loses nothing — every layer outcome is
  // also a hardware outcome.  A hardware fairness bound tighter than the
  // layer machine's can legitimately miss layer outcomes, so this
  // direction stays opt-in; Thm 3.1 itself is the forward inclusion
  // checked above.
  if (CheckExactness) {
    for (const Outcome &O : LayerRes.Outcomes)
      if (!HwSet.contains(O)) {
        Report.Counterexample =
            "layer outcome unreachable on hardware\n  log: " +
            logToString(O.FinalLog);
        return Report;
      }
  }
  Report.Holds = true;
  return Report;
}

CertPtr
ccal::makeMulticoreLinkCertificate(const std::string &MachineName,
                                   const MulticoreLinkReport &Report) {
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "MulticoreLink";
  C->Underlay = "Mx86(" + MachineName + ")";
  C->Module = "(hardware scheduling)";
  C->Overlay = "Lx86[D](" + MachineName + ")";
  C->Relation = "id";
  C->CoverageComplete = Report.HardwareComplete && Report.LayerComplete;
  C->Coverage = Report.Coverage;
  C->Valid = Report.Holds && C->CoverageComplete;
  C->Obligations = Report.ObligationsChecked;
  C->Runs = Report.HardwareSchedules + Report.LayerSchedules;
  if (!Report.Holds)
    C->Notes.push_back(Report.Counterexample);
  return C;
}
