//===- machine/StateCache.h - Bounded snapshot dedup cache -----*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Explorer's state-dedup cache, factored out of the DFS and made
/// memory-bounded (after CDSChecker's bounded state hashing, Norris &
/// Demsky): a lock-free bloom-filter front screens definite misses, an
/// exact map of full snapshots is LRU-evicted under a byte budget, and
/// evicted non-POR entries can optionally spill to disk as fingerprint
/// records written with the certificate store's atomic temp+rename idiom.
///
/// Two probe protocols share the store (one per run, never mixed):
///
///  - checkOrRemember — the plain DFS protocol: probe-and-remember at
///    node expansion, a hit requiring the same last participant with no
///    larger consecutive-run count and no larger depth (the first visit's
///    fairness/budget context was at least as permissive).
///
///  - porProbe / porInsert — the POR-aware protocol that lifts the old
///    "StateCache bypassed under Por" restriction.  An entry is inserted
///    only when its subtree was FULLY explored (at frame pop), and
///    carries the sleep set and per-participant step tally the visit ran
///    under plus a deduped summary of every (participant, footprint) step
///    in the subtree.  It covers a revisit only when the entry's sleep
///    set is a SUBSET of the revisit's and its depth and tallies are no
///    larger — then everything the revisit would explore, the first visit
///    provably explored.  The subtree summary is handed back on a hit so
///    the caller can replay DPOR race detection against its current
///    prefix (the backtrack points the pruned subtree would have
///    inserted there must still be inserted).
///
/// With the byte budget at 0 and no spill directory the exact map keeps
/// every remembered entry, preserving the pre-budget cache semantics
/// bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_STATECACHE_H
#define CCAL_MACHINE_STATECACHE_H

#include "core/Footprint.h"
#include "support/Hash.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccal {
namespace detail {

/// Detects machines providing snapshotBytes(); the byte budget falls back
/// to sizeof-based accounting without it.
template <typename M, typename = void>
struct MachineHasSnapshotBytes : std::false_type {};
template <typename M>
struct MachineHasSnapshotBytes<
    M, std::void_t<decltype(std::declval<const M &>().snapshotBytes())>>
    : std::true_type {};

/// Estimated resident bytes of one machine snapshot, for the cache's byte
/// budget.  An estimate, not an exact malloc count: it must only be
/// monotone enough that the LRU budget tracks real memory.
template <typename MachineT>
std::size_t machineSnapshotBytes(const MachineT &M) {
  if constexpr (MachineHasSnapshotBytes<MachineT>::value)
    return M.snapshotBytes();
  else
    return sizeof(MachineT);
}

inline std::size_t footprintBytes(const Footprint &F) {
  std::size_t B = sizeof(Footprint);
  for (const std::string &S : F.Reads)
    B += sizeof(std::string) + S.size();
  for (const std::string &S : F.Writes)
    B += sizeof(std::string) + S.size();
  return B;
}

/// Bounded, thread-safe snapshot cache (see file comment).
template <typename MachineT> class BoundedStateCache {
public:
  /// One spilled fingerprint: enough for the non-POR compatibility test,
  /// nothing for structural comparison — which is why spilling is opt-in
  /// (a 64-bit fingerprint collision would prune an unexplored state).
  struct SpillRecord {
    std::uint64_t Hash;
    std::uint32_t LastId;
    std::uint32_t Consec;
    std::uint64_t Depth;

    bool operator<(const SpillRecord &O) const {
      if (Hash != O.Hash)
        return Hash < O.Hash;
      if (LastId != O.LastId)
        return LastId < O.LastId;
      if (Consec != O.Consec)
        return Consec < O.Consec;
      return Depth < O.Depth;
    }
  };

  void configure(std::size_t MaxEntriesIn, std::size_t BudgetBytesIn,
                 std::string SpillDirIn) {
    MaxEntries = MaxEntriesIn;
    BudgetBytes = BudgetBytesIn;
    SpillDir = std::move(SpillDirIn);
    Bloom = std::make_unique<std::atomic<std::uint64_t>[]>(BloomWords);
    for (std::size_t I = 0; I != BloomWords; ++I)
      Bloom[I].store(0, std::memory_order_relaxed);
  }

  ~BoundedStateCache() { flushSpill(); }

  /// Plain-DFS protocol: true when an equivalent-or-more-permissive visit
  /// is already cached (RAM or spill); otherwise remembers the state.
  bool checkOrRemember(const MachineT &M, ThreadId LastId, unsigned Consec,
                       std::uint64_t Depth) {
    const std::uint64_t H = hashCombine(M.snapshotHash(), LastId);
    const bool Maybe = bloomMayContain(H);
    Stripe &S = stripeOf(H);
    {
      std::lock_guard<std::mutex> L(S.Mu);
      if (Maybe) {
        auto It = S.Map.find(H);
        if (It != S.Map.end())
          for (auto EIt : It->second)
            if (EIt->LastId == LastId && EIt->Consec <= Consec &&
                EIt->Depth <= Depth && EIt->M.sameSnapshot(M)) {
              touch(S, EIt);
              return true;
            }
      }
      if (!(Maybe && spillContains(H, LastId, Consec, Depth))) {
        remember(S, Entry(MachineT(M), H, LastId, Consec, Depth));
        return false;
      }
    }
    SpillHits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// POR protocol, probe half (at node expansion).  A hit copies the
  /// entry's subtree step summary into \p SubFootsOut for race replay.
  bool porProbe(const MachineT &M,
                const std::vector<ParticipantFootprint> &Sleep,
                const std::map<ThreadId, std::uint64_t> &Tally,
                std::uint64_t Depth,
                std::vector<ParticipantFootprint> &SubFootsOut) {
    const std::uint64_t H = M.snapshotHash();
    if (!bloomMayContain(H))
      return false;
    Stripe &S = stripeOf(H);
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Map.find(H);
    if (It == S.Map.end())
      return false;
    for (auto EIt : It->second) {
      if (EIt->Depth > Depth || !sleepSubset(EIt->Sleep, Sleep) ||
          !tallyLeq(EIt->Tally, Tally) || !EIt->M.sameSnapshot(M))
        continue;
      SubFootsOut = EIt->SubFoots;
      touch(S, EIt);
      return true;
    }
    return false;
  }

  /// POR protocol, insert half (at frame pop, fully-explored subtrees
  /// only).  Takes the dying frame's machine by move.
  void porInsert(MachineT &&M, std::uint64_t Depth,
                 std::vector<ParticipantFootprint> Sleep,
                 std::map<ThreadId, std::uint64_t> Tally,
                 std::vector<ParticipantFootprint> SubFoots) {
    const std::uint64_t H = M.snapshotHash();
    Entry E(std::move(M), H, /*LastId=*/~0u, /*Consec=*/0, Depth);
    E.Sleep = std::move(Sleep);
    E.Tally = std::move(Tally);
    E.SubFoots = std::move(SubFoots);
    Stripe &S = stripeOf(H);
    std::lock_guard<std::mutex> L(S.Mu);
    // Benign duplicate under races between probe and insert: another
    // worker may have inserted the same state meanwhile — extra memory,
    // never unsoundness.  POR entries are never spilled (the sleep and
    // summary context cannot ride a fingerprint).
    remember(S, std::move(E));
  }

  std::uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  std::uint64_t spillHits() const {
    return SpillHits.load(std::memory_order_relaxed);
  }
  std::uint64_t spilledRecords() const {
    return Spilled.load(std::memory_order_relaxed);
  }

private:
  struct Entry {
    MachineT M;
    std::uint64_t Hash;
    ThreadId LastId;
    unsigned Consec;
    std::uint64_t Depth;
    std::size_t Bytes = 0;

    // POR context (empty on plain-DFS entries).
    std::vector<ParticipantFootprint> Sleep;
    std::map<ThreadId, std::uint64_t> Tally;
    std::vector<ParticipantFootprint> SubFoots;

    Entry(MachineT M, std::uint64_t Hash, ThreadId LastId, unsigned Consec,
          std::uint64_t Depth)
        : M(std::move(M)), Hash(Hash), LastId(LastId), Consec(Consec),
          Depth(Depth) {}

    std::size_t computeBytes() const {
      std::size_t B = sizeof(Entry) + machineSnapshotBytes(M);
      for (const ParticipantFootprint &PF : Sleep)
        B += footprintBytes(PF.Foot);
      for (const ParticipantFootprint &PF : SubFoots)
        B += footprintBytes(PF.Foot);
      B += Tally.size() * (sizeof(ThreadId) + sizeof(std::uint64_t) + 32);
      return B;
    }
  };

  /// LRU list per stripe (front = most recent) with a hash index into it.
  /// Striping keeps workers probing distinct states off one global lock;
  /// eviction is stripe-local against the GLOBAL byte counter, so each
  /// inserting stripe sheds its own tail until the total fits.
  struct Stripe {
    std::mutex Mu;
    std::list<Entry> Lru;
    std::unordered_map<std::uint64_t,
                       std::vector<typename std::list<Entry>::iterator>>
        Map;
  };

  Stripe &stripeOf(std::uint64_t H) {
    return Stripes[(H >> 4) & (NumStripes - 1)];
  }

  void touch(Stripe &S, typename std::list<Entry>::iterator EIt) {
    S.Lru.splice(S.Lru.begin(), S.Lru, EIt);
  }

  /// Inserts under the caller-held stripe lock, then evicts this stripe's
  /// LRU tail while the global byte total exceeds the budget.  The entry
  /// COUNT cap keeps the old "stop remembering, stay sound" semantics;
  /// the BYTE budget instead evicts, preferring recent states (CDSChecker
  /// observes revisits cluster near the frontier).
  void remember(Stripe &S, Entry &&E) {
    if (MaxEntries != 0 &&
        Count.load(std::memory_order_relaxed) >= MaxEntries)
      return;
    E.Bytes = E.computeBytes();
    const std::uint64_t H = E.Hash;
    TotalBytes.fetch_add(E.Bytes, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    S.Lru.push_front(std::move(E));
    S.Map[H].push_back(S.Lru.begin());
    bloomAdd(H);
    while (BudgetBytes != 0 &&
           TotalBytes.load(std::memory_order_relaxed) > BudgetBytes &&
           S.Lru.size() > 1)
      evictOne(S);
  }

  void evictOne(Stripe &S) {
    auto Victim = std::prev(S.Lru.end());
    auto MapIt = S.Map.find(Victim->Hash);
    if (MapIt != S.Map.end()) {
      auto &Vec = MapIt->second;
      Vec.erase(std::remove(Vec.begin(), Vec.end(), Victim), Vec.end());
      if (Vec.empty())
        S.Map.erase(MapIt);
    }
    TotalBytes.fetch_sub(Victim->Bytes, std::memory_order_relaxed);
    Count.fetch_sub(1, std::memory_order_relaxed);
    Evictions.fetch_add(1, std::memory_order_relaxed);
    // Only plain-DFS entries can ride a fingerprint; POR entries' sleep
    // and summary context cannot, so they are simply dropped (the search
    // re-explores — slower, never unsound).
    if (!SpillDir.empty() && Victim->Sleep.empty() &&
        Victim->SubFoots.empty())
      spillRecord({Victim->Hash, static_cast<std::uint32_t>(Victim->LastId),
                   static_cast<std::uint32_t>(Victim->Consec),
                   Victim->Depth});
    S.Lru.erase(Victim);
  }

  // --- bloom front -------------------------------------------------------
  //
  // Records every hash ever remembered (RAM or spill); "absent" is
  // definitive, so misses skip the exact probe and the spill index.  Two
  // derived probe positions per hash over 2^19 bits (64 KiB).

  static constexpr std::size_t BloomWords = 1u << 13;

  void bloomAdd(std::uint64_t H) {
    for (std::uint64_t P : {H, hashCombine(H, 0x9e3779b97f4a7c15ull)})
      Bloom[(P >> 6) & (BloomWords - 1)].fetch_or(
          1ull << (P & 63), std::memory_order_relaxed);
  }

  bool bloomMayContain(std::uint64_t H) const {
    for (std::uint64_t P : {H, hashCombine(H, 0x9e3779b97f4a7c15ull)})
      if (!(Bloom[(P >> 6) & (BloomWords - 1)].load(
                std::memory_order_relaxed) &
            (1ull << (P & 63))))
        return false;
    return true;
  }

  // --- spill (opt-in) ----------------------------------------------------
  //
  // Evicted fingerprints accumulate in a pending buffer and merge into a
  // sorted on-disk file (<SpillDir>/statecache.spill) via the cert
  // store's temp+rename idiom; a sorted in-memory mirror of the file
  // serves lookups (24 B per record vs multi-KiB snapshots — the mirror
  // IS the memory win).

  void spillRecord(SpillRecord R) {
    std::lock_guard<std::mutex> L(SpillMu);
    Pending.push_back(R);
    Spilled.fetch_add(1, std::memory_order_relaxed);
    if (Pending.size() >= 1024)
      flushSpillLocked();
  }

  bool spillContains(std::uint64_t H, ThreadId LastId, unsigned Consec,
                     std::uint64_t Depth) {
    if (SpillDir.empty())
      return false;
    std::lock_guard<std::mutex> L(SpillMu);
    for (const SpillRecord &R : Pending)
      if (R.Hash == H && R.LastId == LastId && R.Consec <= Consec &&
          R.Depth <= Depth)
        return true;
    SpillRecord Lo{H, 0, 0, 0};
    for (auto It = std::lower_bound(Index.begin(), Index.end(), Lo);
         It != Index.end() && It->Hash == H; ++It)
      if (It->LastId == LastId && It->Consec <= Consec && It->Depth <= Depth)
        return true;
    return false;
  }

  void flushSpill() {
    if (SpillDir.empty())
      return;
    std::lock_guard<std::mutex> L(SpillMu);
    flushSpillLocked();
  }

  void flushSpillLocked() {
    if (Pending.empty())
      return;
    std::sort(Pending.begin(), Pending.end());
    std::vector<SpillRecord> Merged;
    Merged.reserve(Index.size() + Pending.size());
    std::merge(Index.begin(), Index.end(), Pending.begin(), Pending.end(),
               std::back_inserter(Merged));
    namespace fs = std::filesystem;
    std::error_code Ec;
    fs::create_directories(SpillDir, Ec);
    const fs::path Final = fs::path(SpillDir) / "statecache.spill";
    const fs::path Tmp = fs::path(SpillDir) / "statecache.spill.tmp";
    {
      std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
      if (!Out)
        return; // spill is best-effort; the RAM cache stays correct
      Out.write(reinterpret_cast<const char *>(Merged.data()),
                static_cast<std::streamsize>(Merged.size() *
                                             sizeof(SpillRecord)));
      if (!Out)
        return;
    }
    fs::rename(Tmp, Final, Ec);
    if (Ec)
      return;
    Index = std::move(Merged);
    Pending.clear();
  }

  std::size_t MaxEntries = 0;
  std::size_t BudgetBytes = 0;
  std::string SpillDir;

  static constexpr std::size_t NumStripes = 16;
  std::array<Stripe, NumStripes> Stripes;
  std::unique_ptr<std::atomic<std::uint64_t>[]> Bloom;
  std::atomic<std::size_t> TotalBytes{0};
  std::atomic<std::size_t> Count{0};
  std::atomic<std::uint64_t> Evictions{0};
  std::atomic<std::uint64_t> SpillHits{0};
  std::atomic<std::uint64_t> Spilled{0};

  std::mutex SpillMu;
  std::vector<SpillRecord> Pending; ///< guarded by SpillMu
  std::vector<SpillRecord> Index;   ///< guarded by SpillMu (file mirror)

  static bool sleepSubset(const std::vector<ParticipantFootprint> &A,
                          const std::vector<ParticipantFootprint> &B) {
    for (const ParticipantFootprint &EA : A) {
      bool Found = false;
      for (const ParticipantFootprint &EB : B)
        if (EA == EB) {
          Found = true;
          break;
        }
      if (!Found)
        return false;
    }
    return true;
  }

  static bool tallyLeq(const std::map<ThreadId, std::uint64_t> &A,
                       const std::map<ThreadId, std::uint64_t> &B) {
    for (const auto &[Tid, N] : A) {
      auto It = B.find(Tid);
      if ((It == B.end() ? 0 : It->second) < N)
        return false;
    }
    return true;
  }
};

} // namespace detail
} // namespace ccal

#endif // CCAL_MACHINE_STATECACHE_H
