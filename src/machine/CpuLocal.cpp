//===- machine/CpuLocal.cpp - CPU-local layer interfaces ---------------------===//

#include "machine/CpuLocal.h"

using namespace ccal;

PrimSemantics ccal::makeFetchIncPrim(std::string Kind) {
  return [Kind](const PrimCall &Call) -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = static_cast<std::int64_t>(logCountKind(*Call.L, Kind));
    Res.Events.push_back(Event(Call.Tid, Kind, Call.Args));
    return Res;
  };
}

PrimSemantics ccal::makeReadCounterPrim(std::string Kind,
                                        std::string CountedKind) {
  return [Kind, CountedKind](const PrimCall &Call)
             -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = static_cast<std::int64_t>(logCountKind(*Call.L, CountedKind));
    Res.Events.push_back(Event(Call.Tid, Kind, Call.Args));
    return Res;
  };
}

PrimSemantics ccal::makeEventPrim(std::string Kind) {
  return [Kind](const PrimCall &Call) -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Events.push_back(Event(Call.Tid, Kind, Call.Args));
    return Res;
  };
}

PrimSemantics ccal::makeConstPrim(std::int64_t Value) {
  return [Value](const PrimCall &) -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = Value;
    return Res;
  };
}

PrimSemantics ccal::makeSelfIdPrim() {
  return [](const PrimCall &Call) -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = static_cast<std::int64_t>(Call.Tid);
    return Res;
  };
}

std::shared_ptr<LayerInterface> ccal::makeInterface(std::string Name) {
  return std::make_shared<LayerInterface>(std::move(Name));
}
