//===- machine/CpuLocal.cpp - CPU-local layer interfaces ---------------------===//

#include "machine/CpuLocal.h"

using namespace ccal;

PrimSemantics ccal::makeFetchIncPrim(std::string Kind) {
  // Intern once at construction; the semantics then runs on integer ids.
  KindId Id(Kind);
  return [Id](const PrimCall &Call) -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = static_cast<std::int64_t>(logCountKind(*Call.L, Id));
    Res.Events.push_back(Event(Call.Tid, Id, Call.Args));
    return Res;
  };
}

PrimSemantics ccal::makeReadCounterPrim(std::string Kind,
                                        std::string CountedKind) {
  KindId Id(Kind), CountedId(CountedKind);
  return [Id, CountedId](const PrimCall &Call)
             -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = static_cast<std::int64_t>(logCountKind(*Call.L, CountedId));
    Res.Events.push_back(Event(Call.Tid, Id, Call.Args));
    return Res;
  };
}

PrimSemantics ccal::makeEventPrim(std::string Kind) {
  KindId Id(Kind);
  return [Id](const PrimCall &Call) -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Events.push_back(Event(Call.Tid, Id, Call.Args));
    return Res;
  };
}

PrimSemantics ccal::makeConstPrim(std::int64_t Value) {
  return [Value](const PrimCall &) -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = Value;
    return Res;
  };
}

PrimSemantics ccal::makeSelfIdPrim() {
  return [](const PrimCall &Call) -> std::optional<PrimResult> {
    PrimResult Res;
    Res.Ret = static_cast<std::int64_t>(Call.Tid);
    return Res;
  };
}

std::shared_ptr<LayerInterface> ccal::makeInterface(std::string Name) {
  return std::make_shared<LayerInterface>(std::move(Name));
}
