//===- machine/MultiCore.cpp - The multicore machine model ------------------===//

#include "machine/MultiCore.h"

#include "support/Check.h"
#include "support/Text.h"

using namespace ccal;

MultiCoreMachine::MultiCoreMachine(MachineConfigPtr CfgIn)
    : Cfg(std::move(CfgIn)) {
  CCAL_CHECK(Cfg && Cfg->Layer && Cfg->Program && Cfg->Program->Linked,
             "machine config needs a layer and a linked program");
  std::vector<std::int64_t> Image = Cfg->Program->initialGlobals();
  for (const auto &[Id, Items] : Cfg->Work) {
    (void)Items;
    auto [It, Inserted] = Cpus.emplace(Id, Cpu(Cfg->Program, Image));
    CCAL_CHECK(Inserted, "duplicate CPU id");
    advance(It->second, Id);
  }
}

void MultiCoreMachine::fault(ThreadId Id, const std::string &Msg) {
  if (Err.empty())
    Err = strFormat("CPU %u: %s", Id, Msg.c_str());
  auto It = Cpus.find(Id);
  if (It != Cpus.end())
    It->second.Phase = CpuPhase::Faulted;
}

bool MultiCoreMachine::advance(Cpu &C, ThreadId Id) {
  const std::vector<CpuWorkItem> &Items = Cfg->Work.at(Id);
  std::uint64_t PrivateCalls = 0;
  while (true) {
    if (++PrivateCalls > Cfg->SliceBudget) {
      fault(Id, "local slice diverged (private-primitive loop?)");
      return false;
    }
    if (!C.Active) {
      if (C.NextWork >= Items.size()) {
        C.Phase = CpuPhase::Idle;
        return true;
      }
      const CpuWorkItem &Item = Items[C.NextWork];
      C.Machine.start(Item.Fn, Item.Args);
      C.Active = true;
    }
    Vm::Status St = C.Machine.run(C.Globals, Cfg->SliceBudget);
    if (St == Vm::Status::Done) {
      C.Returns.push_back(C.Machine.result());
      C.Active = false;
      ++C.NextWork;
      continue;
    }
    if (St == Vm::Status::Error) {
      fault(Id, C.Machine.error());
      return false;
    }
    CCAL_CHECK(St == Vm::Status::AtPrim, "unexpected VM status");
    const Primitive *P = Cfg->Layer->lookup(C.Machine.primKind());
    if (!P) {
      fault(Id, "call to primitive '" + C.Machine.primName() +
                    "' not provided by layer " + Cfg->Layer->name());
      return false;
    }
    if (P->Shared) {
      C.Phase = CpuPhase::AtShared;
      return true;
    }
    // Private primitive: silent, executed immediately.
    PrimCall Call;
    Call.Tid = Id;
    Call.Args = C.Machine.primArgs();
    Call.L = &GlobalLog;
    Call.LocalMem = &C.Globals;
    std::optional<PrimResult> Res = P->Sem(Call);
    if (!Res) {
      fault(Id, "private primitive '" + P->Name + "' got stuck");
      return false;
    }
    CCAL_CHECK(Res->Events.empty(),
               "private primitives must not emit events");
    for (auto [Addr, V] : Res->LocalWrites) {
      CCAL_CHECK(Addr >= 0 &&
                     static_cast<size_t>(Addr) < C.Globals.size(),
                 "primitive local write out of range");
      C.Globals[static_cast<size_t>(Addr)] = V;
    }
    C.Machine.resumePrim(Res->Ret);
  }
}

bool MultiCoreMachine::allIdle() const {
  for (const auto &[Id, C] : Cpus)
    if (C.Phase != CpuPhase::Idle)
      return false;
  return true;
}

std::vector<ThreadId> MultiCoreMachine::schedulable() const {
  std::vector<ThreadId> Out;
  for (const auto &[Id, C] : Cpus) {
    if (C.Phase != CpuPhase::AtShared)
      continue;
    // A CPU whose pending primitive is currently Blocked (an atomic
    // blocking spec such as acq on a held lock) is not schedulable until
    // the log grows; primitives are deterministic in the log, so this
    // dry run is exact.
    const Primitive *P = Cfg->Layer->lookup(C.Machine.primKind());
    if (P && P->Shared) {
      PrimCall Call;
      Call.Tid = Id;
      Call.Args = C.Machine.primArgs();
      Call.L = &GlobalLog;
      Call.LocalMem = &C.Globals;
      std::optional<PrimResult> Res = P->Sem(Call);
      if (Res && Res->Blocked)
        continue;
    }
    Out.push_back(Id);
  }
  return Out;
}

const std::string &MultiCoreMachine::pendingPrim(ThreadId C) const {
  return pendingPrimKind(C).str();
}

KindId MultiCoreMachine::pendingPrimKind(ThreadId C) const {
  auto It = Cpus.find(C);
  if (It == Cpus.end() || It->second.Phase != CpuPhase::AtShared)
    return KindId();
  return It->second.Machine.primKind();
}

Footprint MultiCoreMachine::stepFootprint(ThreadId C) const {
  return Cfg->Layer->footprintOf(pendingPrimKind(C));
}

Footprint MultiCoreMachine::eventFootprint(const Event &E) const {
  return Cfg->Layer->footprintOf(E.Kind);
}

const MemoryModel &MultiCoreMachine::model() const {
  return Cfg->Model ? *Cfg->Model : *scMemory();
}

unsigned MultiCoreMachine::stepVariants(ThreadId C) const {
  if (!weakModel())
    return 1;
  auto It = Cpus.find(C);
  if (It == Cpus.end() || It->second.Phase != CpuPhase::AtShared)
    return 1;
  return model().stepVariants(Ra, C, stepFootprint(C),
                              Cfg->MaxReadsFromPerStep);
}

bool MultiCoreMachine::step(ThreadId Id) { return step(Id, 0); }

bool MultiCoreMachine::step(ThreadId Id, unsigned Variant) {
  if (!ok())
    return false;
  auto It = Cpus.find(Id);
  CCAL_CHECK(It != Cpus.end(), "step: unknown CPU");
  Cpu &C = It->second;
  CCAL_CHECK(C.Phase == CpuPhase::AtShared,
             "step: CPU is not parked at a shared primitive");

  const Primitive *P = Cfg->Layer->lookup(C.Machine.primKind());
  CCAL_CHECK(P && P->Shared, "parked primitive must be shared");

  const bool Weak = weakModel();
  const Footprint Foot = Weak ? stepFootprint(Id) : Footprint();
  std::optional<Log> Visible;
  if (Weak) {
    // Fail closed when the reads-from enumeration would be truncated:
    // a capped menu silently hides behaviors the model allows.
    const unsigned Count =
        model().stepVariants(Ra, Id, Foot, Cfg->MaxReadsFromPerStep);
    if (Count > Cfg->MaxReadsFromPerStep) {
      fault(Id, "step offers more reads-from choices than "
                "MaxReadsFromPerStep admits; raise the budget in the "
                "MachineConfig");
      return false;
    }
    CCAL_CHECK(Variant < Count, "step: reads-from variant out of range");
    Visible = model().visibleLog(Ra, GlobalLog, Id, Foot, Variant);
  } else {
    CCAL_CHECK(Variant == 0, "step: sc model has a single variant");
  }

  PrimCall Call;
  Call.Tid = Id;
  Call.Args = C.Machine.primArgs();
  Call.L = Visible ? &*Visible : &GlobalLog;
  Call.LocalMem = &C.Globals;
  std::optional<PrimResult> Res = P->Sem(Call);
  if (!Res) {
    fault(Id, "shared primitive '" + P->Name +
                  "' got stuck (data race or protocol violation); log: " +
                  logToString(GlobalLog));
    return false;
  }
  // Blocked is checked against the FULL log by schedulable(); a
  // weak-ordered primitive must never block (its visible log may differ
  // from the full log, which would make enabledness unsound), and the
  // blocking primitives (atomic lock specs) keep their SeqCst defaults.
  CCAL_CHECK(!Res->Blocked, "step: blocked CPUs are not schedulable");
  const std::size_t FirstNew = GlobalLog.size();
  logAppendAll(GlobalLog, Res->Events);
  if (Weak)
    model().commit(Ra, GlobalLog, FirstNew, Id, Foot, Variant,
                   [this](KindId K) { return Cfg->Layer->footprintOf(K); });
  for (auto [Addr, V] : Res->LocalWrites) {
    CCAL_CHECK(Addr >= 0 && static_cast<size_t>(Addr) < C.Globals.size(),
               "primitive local write out of range");
    C.Globals[static_cast<size_t>(Addr)] = V;
  }
  C.Machine.resumePrim(Res->Ret);
  ++StepsTaken;
  return advance(C, Id);
}

std::map<ThreadId, std::vector<std::int64_t>>
MultiCoreMachine::returns() const {
  std::map<ThreadId, std::vector<std::int64_t>> Out;
  for (const auto &[Id, C] : Cpus)
    Out.emplace(Id, C.Returns);
  return Out;
}

const std::vector<std::int64_t> &
MultiCoreMachine::cpuMemory(ThreadId C) const {
  auto It = Cpus.find(C);
  CCAL_CHECK(It != Cpus.end(), "unknown CPU");
  return It->second.Globals;
}

std::uint64_t MultiCoreMachine::snapshotHash() const {
  Hasher H(hashLog(GlobalLog));
  // Message views depend on earlier reads-from choices, not on the log,
  // so under a weak model they are genuine state; under SC this folds
  // nothing and the hash is bit-identical to the pre-model machine.
  if (weakModel())
    Ra.addTo(H);
  H.u64(Cpus.size());
  for (const auto &[Id, C] : Cpus)
    H.u64(Id)
        .u64(C.Machine.stateHash())
        .i64s(C.Globals)
        .u64(C.NextWork)
        .u64(static_cast<std::uint64_t>(C.Active))
        .u64(static_cast<std::uint64_t>(C.Phase))
        .i64s(C.Returns);
  return H.value();
}

std::size_t MultiCoreMachine::snapshotBytes() const {
  std::size_t B = sizeof(MultiCoreMachine) + GlobalLog.snapshotCopyBytes();
  if (weakModel())
    B += Ra.bytes();
  for (const auto &[Id, C] : Cpus) {
    (void)Id;
    B += sizeof(Cpu) + (C.Globals.size() + C.Returns.size()) *
                           sizeof(std::int64_t);
  }
  return B;
}

bool MultiCoreMachine::sameSnapshot(const MultiCoreMachine &O) const {
  if (Cfg.get() != O.Cfg.get() || Err != O.Err ||
      GlobalLog != O.GlobalLog || Cpus.size() != O.Cpus.size())
    return false;
  if (weakModel() && Ra != O.Ra)
    return false;
  auto It = O.Cpus.begin();
  for (const auto &[Id, C] : Cpus) {
    const auto &[OId, OC] = *It++;
    if (Id != OId || C.Phase != OC.Phase || C.NextWork != OC.NextWork ||
        C.Active != OC.Active || C.Returns != OC.Returns ||
        C.Globals != OC.Globals || !C.Machine.sameState(OC.Machine))
      return false;
  }
  return true;
}
