//===- machine/MemoryModel.cpp - Pluggable memory models --------------------===//

#include "machine/MemoryModel.h"

#include "support/Check.h"

#include <algorithm>

using namespace ccal;

void RaState::addTo(Hasher &H) const {
  H.u64(Mo.size());
  for (const auto &[Loc, Msgs] : Mo) {
    H.str(Loc).u64(Msgs.size());
    for (const RaMsg &M : Msgs) {
      H.b(M.Release).u64(M.LogIdx);
      M.View.addTo(H);
    }
  }
  H.u64(Views.size());
  for (const auto &[Tid, V] : Views) {
    H.u64(Tid);
    V.addTo(H);
  }
  Sc.addTo(H);
}

std::size_t RaState::bytes() const {
  std::size_t B = sizeof(RaState) + Sc.bytes();
  for (const auto &[Loc, Msgs] : Mo) {
    B += Loc.size() + 48;
    for (const RaMsg &M : Msgs)
      B += sizeof(RaMsg) + M.View.bytes();
  }
  for (const auto &[Tid, V] : Views) {
    (void)Tid;
    B += 48 + V.bytes();
  }
  return B;
}

namespace {

class ScMemoryImpl final : public MemoryModel {
public:
  const char *name() const override { return "sc"; }
  bool weak() const override { return false; }
  unsigned stepVariants(const RaState &, ThreadId, const Footprint &,
                        unsigned) const override {
    return 1;
  }
  std::optional<Log> visibleLog(const RaState &, const Log &, ThreadId,
                                const Footprint &,
                                unsigned Variant) const override {
    CCAL_CHECK(Variant == 0, "sc memory has a single reads-from choice");
    return std::nullopt;
  }
  void commit(RaState &, const Log &, std::size_t, ThreadId,
              const Footprint &, unsigned,
              const std::function<Footprint(KindId)> &) const override {}
};

/// A step's SC coupling: SeqCst accesses and SC fences synchronize with
/// the global SC view bidirectionally.
bool scCoupled(const Footprint &F) {
  if (F.ScFence)
    return true;
  if (!F.Reads.empty() && F.ReadOrd == MemOrder::SeqCst)
    return true;
  if (!F.Writes.empty() && F.WriteOrd == MemOrder::SeqCst)
    return true;
  return false;
}

/// A read location whose reads-from choice is enumerable: not SeqCst (those
/// read latest), not memory-fair (spin reads, which read latest by the
/// await-termination assumption), and not the read half of an atomic RMW
/// (which also reads latest — that is what makes it an RMW).
bool enumerable(const Footprint &F, const std::string &Loc) {
  if (F.ReadOrd == MemOrder::SeqCst || F.FairRead)
    return false;
  if (F.Atomic &&
      std::binary_search(F.Writes.begin(), F.Writes.end(), Loc))
    return false;
  return true;
}

/// Decoded reads-from choice of one step: the view the step entered with
/// and, for each enumerable read location (in sorted Reads order), the
/// chosen position into mo(l) — a count in [entry front, |mo(l)|], where
/// position k means "observes exactly the first k writes".
struct RaChoice {
  RaView Entry;
  std::vector<std::pair<std::string, std::uint32_t>> Pos;
};

class RaMemoryImpl final : public MemoryModel {
public:
  const char *name() const override { return "ra"; }
  bool weak() const override { return true; }

  unsigned stepVariants(const RaState &S, ThreadId Tid, const Footprint &F,
                        unsigned Budget) const override {
    const RaView Entry = entryView(S, Tid, F);
    std::uint64_t Count = 1;
    for (const std::string &Loc : F.Reads) {
      if (!enumerable(F, Loc))
        continue;
      const std::uint64_t MoLen = moLen(S, Loc);
      const std::uint64_t Front = Entry.of(Loc);
      CCAL_CHECK(Front <= MoLen, "view front beyond modification order");
      Count *= MoLen - Front + 1;
      if (Count > Budget)
        return Budget + 1; // saturate: caller faults fail-closed
    }
    return static_cast<unsigned>(Count);
  }

  std::optional<Log> visibleLog(const RaState &S, const Log &Full,
                                ThreadId Tid, const Footprint &F,
                                unsigned Variant) const override {
    const RaChoice C = decode(S, Tid, F, Variant);
    // Hide every event that writes a chosen location beyond its chosen
    // position.  Events writing only other locations stay visible; the
    // footprint contract says they cannot influence this primitive.
    std::vector<std::uint32_t> Hidden;
    for (const auto &[Loc, Pos] : C.Pos) {
      auto It = S.Mo.find(Loc);
      if (It == S.Mo.end())
        continue;
      const std::vector<RaMsg> &Msgs = It->second;
      for (std::size_t K = Pos; K < Msgs.size(); ++K)
        Hidden.push_back(Msgs[K].LogIdx);
    }
    if (Hidden.empty())
      return std::nullopt;
    std::sort(Hidden.begin(), Hidden.end());
    Hidden.erase(std::unique(Hidden.begin(), Hidden.end()), Hidden.end());
    Log Out;
    auto Next = Hidden.begin();
    for (std::size_t I = 0, E = Full.size(); I != E; ++I) {
      if (Next != Hidden.end() && *Next == I) {
        ++Next;
        continue;
      }
      Out.push_back(Full[I]);
    }
    return Out;
  }

  void commit(RaState &S, const Log &Full, std::size_t FirstNew,
              ThreadId Tid, const Footprint &F, unsigned Variant,
              const std::function<Footprint(KindId)> &FootOfKind)
      const override {
    RaChoice C = decode(S, Tid, F, Variant);
    RaView E = C.Entry;

    // Reads: advance the front on every read location (coherence), and
    // collect acquire joins from release messages read-from.  All reads
    // choose against the entry view; joins apply afterwards (see header).
    RaView AcqJoin;
    auto ChosenPos = [&](const std::string &Loc) -> std::uint32_t {
      for (const auto &[L, P] : C.Pos)
        if (L == Loc)
          return P;
      return static_cast<std::uint32_t>(moLen(S, Loc)); // reads latest
    };
    for (const std::string &Loc : F.Reads) {
      const std::uint32_t Pos = ChosenPos(Loc);
      E.advance(Loc, Pos);
      if (Pos == 0 || !F.readActsAcquire())
        continue;
      auto It = S.Mo.find(Loc);
      if (It != S.Mo.end() && It->second[Pos - 1].Release)
        AcqJoin.join(It->second[Pos - 1].View);
    }
    E.join(AcqJoin);

    // Writes: one message per write location of each appended event; the
    // message view is the writer's view including the write itself.
    for (std::size_t I = FirstNew, End = Full.size(); I != End; ++I) {
      const Footprint EF = FootOfKind(Full[I].Kind);
      if (EF.Writes.empty())
        continue;
      std::vector<std::pair<const std::string *, std::size_t>> NewMsgs;
      for (const std::string &Loc : EF.Writes) {
        std::vector<RaMsg> &Msgs = S.Mo[Loc];
        RaMsg M;
        M.Release = EF.writeActsRelease();
        M.LogIdx = static_cast<std::uint32_t>(I);
        Msgs.push_back(std::move(M));
        E.advance(Loc, static_cast<std::uint32_t>(Msgs.size()));
        NewMsgs.emplace_back(&Loc, Msgs.size() - 1);
      }
      for (auto &[Loc, MsgIdx] : NewMsgs)
        S.Mo[*Loc][MsgIdx].View = E;
    }

    if (scCoupled(F))
      S.Sc.join(E);
    S.Views[Tid] = std::move(E);
  }

private:
  static std::uint64_t moLen(const RaState &S, const std::string &Loc) {
    auto It = S.Mo.find(Loc);
    return It == S.Mo.end() ? 0 : It->second.size();
  }

  static RaView entryView(const RaState &S, ThreadId Tid,
                          const Footprint &F) {
    RaView E;
    auto It = S.Views.find(Tid);
    if (It != S.Views.end())
      E = It->second;
    if (scCoupled(F))
      E.join(S.Sc);
    return E;
  }

  /// Mixed-radix decode, one digit per enumerable read location in sorted
  /// order; digit d maps to position |mo(l)| - d, so variant 0 is the
  /// all-latest (SC-coincident) choice.
  RaChoice decode(const RaState &S, ThreadId Tid, const Footprint &F,
                  unsigned Variant) const {
    RaChoice C;
    C.Entry = entryView(S, Tid, F);
    std::uint64_t V = Variant;
    for (const std::string &Loc : F.Reads) {
      if (!enumerable(F, Loc))
        continue;
      const std::uint64_t MoLen = moLen(S, Loc);
      const std::uint64_t Front = C.Entry.of(Loc);
      const std::uint64_t Radix = MoLen - Front + 1;
      const std::uint64_t Digit = V % Radix;
      V /= Radix;
      C.Pos.emplace_back(Loc, static_cast<std::uint32_t>(MoLen - Digit));
    }
    CCAL_CHECK(V == 0, "reads-from variant out of range");
    return C;
  }
};

} // namespace

MemoryModelPtr ccal::scMemory() {
  static const MemoryModelPtr M = std::make_shared<ScMemoryImpl>();
  return M;
}

MemoryModelPtr ccal::raMemory() {
  static const MemoryModelPtr M = std::make_shared<RaMemoryImpl>();
  return M;
}
