//===- machine/MemoryModel.h - Pluggable memory models ---------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory model as an explicit machine parameter (DESIGN.md §13).
///
/// The paper's machines are sequentially consistent by construction: every
/// shared primitive observes the full global log.  The shipped runtime
/// locks, however, run on real `std::atomic` with hand-picked
/// `memory_order` annotations that SC exploration never exercises.  This
/// file lifts "which log does a primitive observe" behind a MemoryModel
/// interface with two implementations:
///
///   * ScMemory — today's semantics.  One reads-from choice per step, the
///     full log visible, no extra state.  A machine with a null or SC
///     model is bit-identical to the pre-model machine (snapshots, hashes,
///     certificates, exploration outcomes).
///
///   * RaMemory — an RC11-style release/acquire operational model with SC
///     fences, in the view-front style of Kaiser et al. and Dalvandi &
///     Dongol (PAPERS.md).  Per location, the modification order mo(l) is
///     the subsequence of log events writing l, in log order.  Each
///     participant carries a view: for every location, how many writes of
///     mo(l) it is guaranteed to observe.  A relaxed or acquire load may
///     read from any write at-or-after its view front — the Explorer
///     enumerates these reads-from choices as step *variants* — and the
///     machine realizes a stale choice by replaying the primitive against
///     a visible log that hides the writes beyond the chosen front.
///
/// View-front rules (applied by RaMemory::commit after each step):
///   * a read of l at position p advances the reader's front on l to p
///     (coherence: later reads of l never travel backwards — CoRR);
///   * an acquire-acting read (Acquire/AcqRel/SeqCst) that reads from a
///     release-acting write joins the write's *message view* — the
///     writer's full view captured when the write was committed — which is
///     what forbids the stale-data MP outcome once the writer releases;
///   * a write to l appends a message to mo(l) and advances the writer's
///     front to the new tail;
///   * SeqCst accesses and ScFence primitives join bidirectionally with a
///     global SC view (entry view |= Sc before reads; Sc |= exit view
///     after writes), restoring interleaving semantics for fully-SeqCst
///     programs and giving SC fences their RC11 strength;
///   * SeqCst reads and atomic RMWs always read the latest write at the
///     current log point — a documented strengthening over RC11's SC
///     access axioms that keeps unannotated primitives exactly as strong
///     under RaMemory as under ScMemory;
///   * reads cannot observe writes not yet in the log, so load-buffering
///     (LB) cycles are forbidden, matching RC11's po ∪ rf acyclicity.
///
/// Within one primitive all reads choose against the view the step was
/// entered with; acquire joins apply after the reads.  Our annotated
/// primitives read at most one weak location each, so the simultaneity is
/// unobservable; it is the documented semantics for anything larger.
///
/// Message views are genuine machine state: a writer's view at write time
/// depends on the reads-from choices of earlier steps and is not a
/// function of the log.  RaState therefore participates in snapshot
/// hashing/equality whenever the model is weak.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_MACHINE_MEMORYMODEL_H
#define CCAL_MACHINE_MEMORYMODEL_H

#include "core/Footprint.h"
#include "core/Log.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ccal {

/// A participant's view: for each location, the number of writes in mo(l)
/// it is guaranteed to observe (its front into the modification order).
/// Locations absent from the map are at front 0.  Fronts only ever grow.
struct RaView {
  std::map<std::string, std::uint32_t> Front;

  std::uint32_t of(const std::string &Loc) const {
    auto It = Front.find(Loc);
    return It == Front.end() ? 0 : It->second;
  }

  void advance(const std::string &Loc, std::uint32_t To) {
    std::uint32_t &F = Front[Loc];
    if (To > F)
      F = To;
  }

  /// Pointwise max (the view-lattice join).
  void join(const RaView &O) {
    for (const auto &[Loc, F] : O.Front)
      advance(Loc, F);
  }

  bool operator==(const RaView &O) const { return Front == O.Front; }

  void addTo(Hasher &H) const {
    H.u64(Front.size());
    for (const auto &[Loc, F] : Front)
      H.str(Loc).u64(F);
  }

  std::size_t bytes() const {
    std::size_t B = sizeof(RaView);
    for (const auto &[Loc, F] : Front) {
      (void)F;
      B += sizeof(std::uint32_t) + Loc.size() + 32; // node overhead estimate
    }
    return B;
  }
};

/// One write message in a location's modification order.
struct RaMsg {
  bool Release = false;   ///< write acted as a release (joinable view)
  std::uint32_t LogIdx = 0; ///< index of the writing event in the full log
  RaView View;            ///< writer's view when the write committed

  bool operator==(const RaMsg &O) const {
    return Release == O.Release && LogIdx == O.LogIdx && View == O.View;
  }
};

/// The weak-memory half of a machine snapshot.  Empty (and excluded from
/// hashing) when the model is SC.
struct RaState {
  std::map<std::string, std::vector<RaMsg>> Mo;
  std::map<ThreadId, RaView> Views;
  RaView Sc;

  bool operator==(const RaState &O) const {
    return Mo == O.Mo && Views == O.Views && Sc == O.Sc;
  }
  bool operator!=(const RaState &O) const { return !(*this == O); }

  void addTo(Hasher &H) const;
  std::size_t bytes() const;
};

/// How a machine resolves shared-memory visibility.  Stateless and
/// immutable; the mutable model state (RaState) lives in the machine
/// snapshot so exploration can fork it.
class MemoryModel {
public:
  virtual ~MemoryModel() = default;

  /// Stable name, folded into certificate keys ("sc", "ra").
  virtual const char *name() const = 0;

  /// True when the model admits non-SC behaviors (enables RaState
  /// snapshotting, reads-from enumeration, ordering-aware conflicts).
  virtual bool weak() const = 0;

  /// Number of distinct reads-from choices participant \p Tid has for a
  /// step with footprint \p F in state \p S.  Variant 0 is always the
  /// all-latest (SC-coincident) choice.  The count saturates at
  /// \p Budget + 1; a caller seeing a value above Budget must fail closed
  /// (the machine faults with a raise-the-budget message).
  virtual unsigned stepVariants(const RaState &S, ThreadId Tid,
                                const Footprint &F,
                                unsigned Budget) const = 0;

  /// The log the primitive's semantics may observe under \p Variant:
  /// std::nullopt when the full log is visible (no copy), otherwise a
  /// filtered copy hiding the writes beyond each chosen front.
  virtual std::optional<Log> visibleLog(const RaState &S, const Log &Full,
                                        ThreadId Tid, const Footprint &F,
                                        unsigned Variant) const = 0;

  /// Folds an executed step into the model state: front advances, acquire
  /// joins, SC-view joins, and one new message per write event appended at
  /// indices [\p FirstNew, Full.size()).  \p FootOfKind resolves the
  /// footprint of each appended event (for its write set and release
  /// strength).
  virtual void commit(RaState &S, const Log &Full, std::size_t FirstNew,
                      ThreadId Tid, const Footprint &F, unsigned Variant,
                      const std::function<Footprint(KindId)> &FootOfKind)
      const = 0;
};

using MemoryModelPtr = std::shared_ptr<const MemoryModel>;

/// Today's sequentially consistent semantics (also what a null model in a
/// MachineConfig means).  One variant, full log, no model state.
MemoryModelPtr scMemory();

/// The release/acquire model described in the file comment.
MemoryModelPtr raMemory();

} // namespace ccal

#endif // CCAL_MACHINE_MEMORYMODEL_H
