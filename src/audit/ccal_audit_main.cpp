//===- audit/ccal_audit_main.cpp - ccal-audit CLI -------------------------===//
//
// Usage:
//   ccal-audit [--spec NAME] [--max-nodes N] [--max-window-ops N]
//              [--witness PATH] TRACE [TRACE...]
//
// Replays recorded trace files (audit/Trace.h) against a registered
// sequential spec and prints the fail-closed verdict per file.  --spec
// overrides the spec name embedded in the trace; --witness dumps a FAIL's
// refuted window back out as a trace file (a self-contained repro for
// `ccal-audit --spec NAME witness.json`).
//
// Exit status: 0 when every trace PASSes, 1 when any FAILs, 2 when any is
// UNRESOLVED or unreadable (UNRESOLVED is not a pass — see
// audit/AuditChecker.h).  FAIL dominates UNRESOLVED in the exit code.
//
//===----------------------------------------------------------------------===//

#include "audit/AuditChecker.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace ccal;
using namespace ccal::audit;

namespace {

int usage(const char *Argv0) {
  std::string Specs;
  for (const std::string &S : specNames())
    Specs += (Specs.empty() ? "" : ", ") + S;
  std::fprintf(stderr,
               "usage: %s [--spec NAME] [--max-nodes N] [--max-window-ops N] "
               "[--witness PATH] TRACE [TRACE...]\n"
               "specs: %s\n",
               Argv0, Specs.c_str());
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string Spec, WitnessPath;
  AuditOptions Opts;
  std::vector<std::string> Paths;

  for (int I = 1; I < argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (std::strcmp(argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (const char *V = Value("--spec"))
      Spec = V;
    else if (const char *V = Value("--max-nodes"))
      Opts.MaxNodesPerWindow = std::strtoull(V, nullptr, 10);
    else if (const char *V = Value("--max-window-ops"))
      Opts.MaxWindowOps = std::strtoull(V, nullptr, 10);
    else if (const char *V = Value("--witness"))
      WitnessPath = V;
    else if (argv[I][0] == '-')
      return usage(argv[0]);
    else
      Paths.push_back(argv[I]);
  }
  if (Paths.empty())
    return usage(argv[0]);

  bool AnyFail = false, AnyUnresolved = false;
  for (const std::string &Path : Paths) {
    Trace T;
    std::string Err;
    if (!readTraceFile(Path, T, Err)) {
      std::fprintf(stderr, "ccal-audit: %s: %s\n", Path.c_str(), Err.c_str());
      AnyUnresolved = true;
      continue;
    }
    const std::string &Use = Spec.empty() ? T.Spec : Spec;
    if (Use.empty()) {
      std::fprintf(stderr,
                   "ccal-audit: %s: no spec embedded in trace; pass --spec\n",
                   Path.c_str());
      AnyUnresolved = true;
      continue;
    }
    AuditReport Rep = auditTrace(T, Use, Opts);
    std::printf("%-10s %s  spec=%s objects=%llu ops=%llu windows=%llu "
                "max-window=%llu nodes=%llu\n",
                outcomeName(Rep.Outcome), Path.c_str(), Use.c_str(),
                static_cast<unsigned long long>(Rep.Objects),
                static_cast<unsigned long long>(Rep.OpsAudited),
                static_cast<unsigned long long>(Rep.Windows),
                static_cast<unsigned long long>(Rep.MaxWindowSeen),
                static_cast<unsigned long long>(Rep.NodesExplored));
    if (!Rep.Detail.empty())
      std::printf("  %s\n", Rep.Detail.c_str());
    if (Rep.Outcome == AuditOutcome::Fail) {
      AnyFail = true;
      if (!WitnessPath.empty()) {
        Trace W;
        W.Spec = Use;
        W.Records = Rep.WitnessOps;
        std::string WErr;
        if (writeTraceFile(WitnessPath, W, WErr))
          std::printf("  witness window written to %s\n", WitnessPath.c_str());
        else
          std::fprintf(stderr, "ccal-audit: %s\n", WErr.c_str());
      }
    } else if (Rep.Outcome == AuditOutcome::Unresolved) {
      AnyUnresolved = true;
    }
  }
  return AnyFail ? 1 : (AnyUnresolved ? 2 : 0);
}
