//===- audit/Trace.cpp - Recorded-trace files --------------------------------===//

#include "audit/Trace.h"

#include "support/Json.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ccal;
using namespace ccal::audit;

Trace audit::traceOf(const Collected &C, std::string Spec) {
  Trace T;
  T.Spec = std::move(Spec);
  T.Dropped = C.DroppedTotal;
  T.Records = C.Records;
  return T;
}

namespace {

/// One record as a JSON line fragment.  Arg is emitted only when present,
/// so "no argument" and "argument 0" stay distinct across round trips.
std::string recordJson(const OpRecord &R) {
  char Buf[256];
  if (R.HasArg)
    std::snprintf(Buf, sizeof(Buf),
                  "{\"obj\":%" PRIu64 ",\"tid\":%" PRIu64
                  ",\"m\":\"%s\",\"arg\":%" PRId64 ",\"ret\":%" PRId64
                  ",\"inv\":%" PRIu64 ",\"resp\":%" PRIu64 "}",
                  R.Obj, R.Tid, methodName(R.M), R.Arg, R.Ret, R.InvokeNs,
                  R.ResponseNs);
  else
    std::snprintf(Buf, sizeof(Buf),
                  "{\"obj\":%" PRIu64 ",\"tid\":%" PRIu64
                  ",\"m\":\"%s\",\"ret\":%" PRId64 ",\"inv\":%" PRIu64
                  ",\"resp\":%" PRIu64 "}",
                  R.Obj, R.Tid, methodName(R.M), R.Ret, R.InvokeNs,
                  R.ResponseNs);
  return Buf;
}

std::string header(const Trace &T) {
  std::string Out = "{\"ccal_audit_trace\":1,\"spec\":\"" + T.Spec +
                    "\",\"dropped\":" + std::to_string(T.Dropped) +
                    ",\"records\":[";
  return Out;
}

/// Reads one non-negative integer field, fail-closed.
bool uintField(const JsonValue &O, const char *Name, std::uint64_t &Out,
               std::string &Error) {
  const JsonValue *F = O.field(Name);
  if (!F || !F->isNumber() || !F->IsInt || F->IntVal < 0) {
    Error = std::string("record field '") + Name +
            "' missing or not a non-negative integer";
    return false;
  }
  Out = static_cast<std::uint64_t>(F->IntVal);
  return true;
}

bool parseRecord(const JsonValue &O, OpRecord &R, std::string &Error) {
  if (!O.isObject()) {
    Error = "record is not an object";
    return false;
  }
  if (!uintField(O, "obj", R.Obj, Error) ||
      !uintField(O, "tid", R.Tid, Error) ||
      !uintField(O, "inv", R.InvokeNs, Error) ||
      !uintField(O, "resp", R.ResponseNs, Error))
    return false;
  const JsonValue *M = O.field("m");
  if (!M || !M->isString() || !methodFromName(M->StrVal, R.M)) {
    Error = "record field 'm' missing or not a known method";
    return false;
  }
  const JsonValue *Ret = O.field("ret");
  if (!Ret || !Ret->isNumber() || !Ret->IsInt) {
    Error = "record field 'ret' missing or not an integer";
    return false;
  }
  R.Ret = Ret->IntVal;
  if (const JsonValue *Arg = O.field("arg")) {
    if (!Arg->isNumber() || !Arg->IsInt) {
      Error = "record field 'arg' is not an integer";
      return false;
    }
    R.HasArg = true;
    R.Arg = Arg->IntVal;
  } else {
    R.HasArg = false;
    R.Arg = 0;
  }
  if (R.ResponseNs < R.InvokeNs) {
    Error = "record has response before invocation";
    return false;
  }
  if (R.Tid == 0) {
    Error = "record has tid 0 (recorder tids are 1-based)";
    return false;
  }
  return true;
}

} // namespace

std::string audit::traceToJson(const Trace &T) {
  std::string Out = header(T);
  for (size_t I = 0; I != T.Records.size(); ++I) {
    if (I)
      Out += ",";
    Out += recordJson(T.Records[I]);
  }
  Out += "]}";
  return Out;
}

bool audit::traceFromJson(const std::string &Text, Trace &Out,
                          std::string &Error) {
  JsonParseResult P = parseJson(Text);
  if (!P) {
    Error = "trace parse error: " + P.Error;
    return false;
  }
  const JsonValue &Doc = P.Value;
  const JsonValue *Magic = Doc.field("ccal_audit_trace");
  if (!Magic || !Magic->isNumber() || Magic->IntVal != 1) {
    Error = "not a ccal audit trace (missing ccal_audit_trace: 1)";
    return false;
  }
  Out = Trace();
  if (const JsonValue *Spec = Doc.field("spec")) {
    if (!Spec->isString()) {
      Error = "trace field 'spec' is not a string";
      return false;
    }
    Out.Spec = Spec->StrVal;
  }
  if (!uintField(Doc, "dropped", Out.Dropped, Error))
    return false;
  const JsonValue *Records = Doc.field("records");
  if (!Records || !Records->isArray()) {
    Error = "trace field 'records' missing or not an array";
    return false;
  }
  Out.Records.reserve(Records->Items.size());
  for (size_t I = 0; I != Records->Items.size(); ++I) {
    OpRecord R;
    if (!parseRecord(Records->Items[I], R, Error)) {
      Error = "record " + std::to_string(I) + ": " + Error;
      return false;
    }
    Out.Records.push_back(R);
  }
  return true;
}

bool audit::writeTraceFile(const std::string &Path, const Trace &T,
                           std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  bool Ok = std::fputs(header(T).c_str(), F) >= 0;
  for (size_t I = 0; Ok && I != T.Records.size(); ++I) {
    if (I && std::fputc(',', F) == EOF)
      Ok = false;
    if (Ok)
      Ok = std::fputs(recordJson(T.Records[I]).c_str(), F) >= 0;
  }
  if (Ok)
    Ok = std::fputs("]}\n", F) >= 0;
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok)
    Error = "write failed for " + Path;
  return Ok;
}

bool audit::readTraceFile(const std::string &Path, Trace &Out,
                          std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (!In.good() && !In.eof()) {
    Error = "read failed for " + Path;
    return false;
  }
  // Tolerate leading "//" comment lines so fuzz-dump files (which carry a
  // "// ccal-fuzz-dump ..." header) replay directly through ccal-audit.
  std::string Text = Buf.str();
  std::size_t At = 0;
  while (At < Text.size()) {
    std::size_t Start = Text.find_first_not_of(" \t\r\n", At);
    if (Start == std::string::npos || Text.compare(Start, 2, "//") != 0)
      break;
    At = Text.find('\n', Start);
    if (At == std::string::npos)
      At = Text.size();
  }
  return traceFromJson(Text.substr(At), Out, Error);
}
