//===- audit/AuditChecker.cpp - Offline trace linearizability audit ----------===//

#include "audit/AuditChecker.h"

#include "core/Replay.h"
#include "objects/Linearize.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

using namespace ccal;
using namespace ccal::audit;

const char *audit::outcomeName(AuditOutcome O) {
  switch (O) {
  case AuditOutcome::Pass:
    return "PASS";
  case AuditOutcome::Fail:
    return "FAIL";
  case AuditOutcome::Unresolved:
    return "UNRESOLVED";
  }
  return "UNRESOLVED";
}

namespace {

//===----------------------------------------------------------------------===//
// Sequential spec engines
//===----------------------------------------------------------------------===//

/// One state shape serves all three registered specs; each spec reads the
/// fields it cares about.
struct SpecState {
  ThreadId Holder = 0;     ///< lock holder, 0 = free
  std::int64_t Acqs = 0;   ///< completed acquires (the next FAI ticket)
  std::int64_t Rels = 0;   ///< completed releases
  std::vector<std::int64_t> Items; ///< queue contents, front at index 0
};

enum class SpecKind { Ticket, Lock, Queue };

/// Shared transition logic.  `step` folds an already-accepted witness event
/// into the state (used by the Replayer); `retOf` computes the return value
/// the spec would produce for a candidate operation in a given state, or
/// nullopt when the spec refuses it there.  The two must agree on
/// acceptance: the Linearize search only appends events retOf accepted, so
/// replay over a witness log can never get stuck.
std::optional<SpecState> specStep(SpecKind K, const SpecState &S,
                                 const Event &E) {
  SpecState N = S;
  const std::string &Kind = E.kind();
  if (Kind == "acq") {
    if (S.Holder != 0)
      return std::nullopt;
    N.Holder = E.Tid;
    ++N.Acqs;
    return N;
  }
  if (Kind == "rel") {
    if (S.Holder != E.Tid)
      return std::nullopt;
    N.Holder = 0;
    ++N.Rels;
    return N;
  }
  if (K == SpecKind::Queue && Kind == "enQ") {
    if (E.Args.size() != 1)
      return std::nullopt;
    N.Items.push_back(E.Args[0]);
    return N;
  }
  if (K == SpecKind::Queue && Kind == "deQ") {
    if (!N.Items.empty())
      N.Items.erase(N.Items.begin());
    return N;
  }
  return std::nullopt;
}

std::optional<std::int64_t> specRet(SpecKind K, const SpecState &S,
                                    ThreadId Tid, const ObservedOp &Op) {
  if (Op.Method == "acq") {
    if (K == SpecKind::Queue || S.Holder != 0)
      return std::nullopt;
    return K == SpecKind::Ticket ? S.Acqs : 0;
  }
  if (Op.Method == "rel") {
    if (K == SpecKind::Queue || S.Holder != Tid)
      return std::nullopt;
    return K == SpecKind::Ticket ? S.Rels : 0;
  }
  if (K == SpecKind::Queue && Op.Method == "enQ") {
    if (Op.Args.size() != 1)
      return std::nullopt;
    return 0;
  }
  if (K == SpecKind::Queue && Op.Method == "deQ")
    return S.Items.empty() ? -1 : S.Items.front();
  return std::nullopt;
}

/// Spec state for one object, carried across windows.  Each window gets a
/// FRESH Replayer seeded with the committed base state: the replay memo is
/// keyed by (replayer identity, log), and two windows' search logs look
/// identical while meaning different base states — a shared replayer
/// would serve stale memo hits across the window boundary.
class SpecEngine {
public:
  explicit SpecEngine(SpecKind K) : K(K) { rebuild(); }

  const SeqSpec &spec() const { return Fn; }
  const SpecState &base() const { return Base; }

  /// The spec state a window witness leaves behind, without committing it
  /// (nullopt only on internal inconsistency: a witness event the spec
  /// refuses — "cannot happen" by construction).
  std::optional<SpecState> stateAfter(const Log &Witness) {
    return R->replay(Witness);
  }

  /// Installs \p S as the base state for the next window and re-seeds the
  /// replayer.  Callers must only commit states proven witness-independent
  /// (see queueStateAmbiguous): committing one witness's state where
  /// another witness would leave a different one turns the checker's later
  /// FAILs into false alarms.
  void commitState(SpecState S) {
    Base = std::move(S);
    rebuild();
  }

private:
  void rebuild() {
    SpecKind Kind = K;
    R = std::make_unique<Replayer<SpecState>>(
        Base, [Kind](const SpecState &S, const Event &E) {
          return specStep(Kind, S, E);
        });
    // The closure replays the search's partial witness log through the
    // window replayer (O(1) amortized along a DFS path, thanks to the
    // structural-prefix memo) and asks what the candidate op would return.
    Replayer<SpecState> *Rp = R.get();
    Fn = [Rp, Kind](const Log &SoFar, ThreadId Tid,
                    const ObservedOp &Op) -> std::optional<std::int64_t> {
      std::optional<SpecState> S = Rp->replay(SoFar);
      if (!S)
        return std::nullopt;
      return specRet(Kind, *S, Tid, Op);
    };
  }

  SpecKind K;
  SpecState Base;
  std::unique_ptr<Replayer<SpecState>> R;
  SeqSpec Fn;
};

bool specKindOf(const std::string &Name, SpecKind &Out) {
  if (Name == "ticket") {
    Out = SpecKind::Ticket;
    return true;
  }
  if (Name == "lock") {
    Out = SpecKind::Lock;
    return true;
  }
  if (Name == "queue") {
    Out = SpecKind::Queue;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Window machinery
//===----------------------------------------------------------------------===//

/// One window's operations, still in invocation-time order.
using Window = std::vector<const OpRecord *>;

/// Partitions \p Ops (already sorted by InvokeNs) at quiescent cuts: a cut
/// falls before index I exactly when every earlier operation responded
/// strictly before Ops[I] invoked — i.e. the cut instant is spanned by no
/// operation, so the real-time order already places the two sides in
/// sequence.  Ties (equal nanoseconds) count as concurrent and stay in one
/// window: the cut must never manufacture precedence the clock cannot
/// prove.
std::vector<Window> partitionWindows(const std::vector<const OpRecord *> &Ops) {
  std::vector<Window> Windows;
  Window Cur;
  std::uint64_t MaxResp = 0;
  for (const OpRecord *R : Ops) {
    if (!Cur.empty() && MaxResp < R->InvokeNs) {
      Windows.push_back(std::move(Cur));
      Cur.clear();
    }
    Cur.push_back(R);
    MaxResp = std::max(MaxResp, R->ResponseNs);
  }
  if (!Cur.empty())
    Windows.push_back(std::move(Cur));
  return Windows;
}

/// Whether the queue state \p After left by one witness of window \p W is
/// the state EVERY witness leaves — the side condition for committing it
/// and auditing the next window independently.
///
/// Counters and lock holders are determined by the window's operation
/// multiset alone, but a FIFO queue's surviving-item ORDER is chosen by
/// the witness: two concurrent enqueues whose values are both still in the
/// queue at the cut can linearize either way, and a later window's dequeue
/// observes the choice.  Dequeued values are pinned (their deQ returns fix
/// the order), and base-state leftovers form a fixed prefix, so ambiguity
/// needs a pair of SURVIVING same-window enqueues that real time leaves
/// unordered.  Checking consecutive pairs of the invocation-sorted
/// survivors suffices: resp(i) < inv(i+1) for all i chains into a total
/// order.  Conservative on duplicate values (all enqueues of a surviving
/// value count as survivors) — over-merging costs search effort, never
/// soundness.
bool queueStateAmbiguous(const Window &W, const SpecState &Base,
                         const SpecState &After) {
  if (After.Items.empty())
    return false;
  std::multiset<std::int64_t> Surviving(After.Items.begin(), After.Items.end());
  for (std::int64_t V : Base.Items) {
    auto It = Surviving.find(V);
    if (It != Surviving.end())
      Surviving.erase(It);
  }
  std::vector<const OpRecord *> Enqs;
  for (const OpRecord *R : W)
    if (R->M == Method::Enq && Surviving.count(R->Arg))
      Enqs.push_back(R);
  std::sort(Enqs.begin(), Enqs.end(),
            [](const OpRecord *A, const OpRecord *B) {
              return A->InvokeNs < B->InvokeNs;
            });
  for (std::size_t I = 1; I < Enqs.size(); ++I)
    if (Enqs[I - 1]->Tid != Enqs[I]->Tid &&
        Enqs[I - 1]->ResponseNs >= Enqs[I]->InvokeNs)
      return true;
  return false;
}

ObservedOp observedOf(const OpRecord &R) {
  ObservedOp Op;
  Op.Method = methodName(R.M);
  if (R.HasArg)
    Op.Args.push_back(R.Arg);
  Op.Ret = R.Ret;
  return Op;
}

/// The per-window inputs to findLinearization.
struct WindowProblem {
  std::map<ThreadId, std::vector<ObservedOp>> Histories;
  PrecedenceMap Precedence;
  PriorityMap Priority;
};

WindowProblem buildProblem(const Window &W) {
  WindowProblem P;
  // Per-thread op lists plus parallel invoke/response vectors, preserving
  // the window's invocation-time order within each thread (which is also
  // each thread's program order: responses precede the thread's next
  // invocation on the one monotonic clock).
  std::map<ThreadId, std::vector<std::uint64_t>> Invs, Resps;
  for (const OpRecord *R : W) {
    ThreadId Tid = static_cast<ThreadId>(R->Tid);
    P.Histories[Tid].push_back(observedOf(*R));
    Invs[Tid].push_back(R->InvokeNs);
    Resps[Tid].push_back(R->ResponseNs);
    P.Priority[OpRef(Tid, Invs[Tid].size() - 1)] = R->InvokeNs;
  }
  // Real-time precedence: before (T, I) runs, thread T' must have placed
  // every op whose response is strictly before (T, I)'s invocation.
  // Per-thread response vectors are non-decreasing, so one covering
  // (T', count) entry per predecessor thread captures all such edges.
  for (const auto &[Tid, Inv] : Invs) {
    for (std::size_t I = 0; I != Inv.size(); ++I) {
      std::vector<std::pair<ThreadId, std::size_t>> Preds;
      for (const auto &[OTid, OResp] : Resps) {
        if (OTid == Tid)
          continue; // program order is always enforced by the search
        std::size_t Count = static_cast<std::size_t>(
            std::lower_bound(OResp.begin(), OResp.end(), Inv[I]) -
            OResp.begin());
        if (Count)
          Preds.emplace_back(OTid, Count);
      }
      if (!Preds.empty())
        P.Precedence[OpRef(Tid, I)] = std::move(Preds);
    }
  }
  return P;
}

std::string objWindowTag(std::uint64_t Obj, std::uint64_t Win) {
  return "obj " + std::to_string(Obj) + " window " + std::to_string(Win);
}

} // namespace

std::vector<std::string> audit::specNames() {
  return {"ticket", "lock", "queue"};
}

bool audit::hasSpec(const std::string &Name) {
  SpecKind K;
  return specKindOf(Name, K);
}

AuditReport audit::auditTrace(const Trace &T, const std::string &Spec,
                              const AuditOptions &Opts) {
  AuditReport Rep;
  SpecKind Kind;
  if (!specKindOf(Spec, Kind)) {
    Rep.Detail = "unknown spec '" + Spec + "'";
    return Rep;
  }
  // Dropped records are a soundness event: the gap could hide exactly the
  // violation being hunted, so nothing recorded alongside them certifies.
  if (T.Dropped != 0) {
    Rep.Detail = std::to_string(T.Dropped) +
                 " record(s) dropped during capture; history is incomplete";
    return Rep;
  }

  // Group by object identity, preserving trace order (which preserves each
  // thread's program order within each object).
  std::map<std::uint64_t, std::vector<const OpRecord *>> ByObj;
  for (const OpRecord &R : T.Records)
    ByObj[R.Obj].push_back(&R);

  bool SawUnresolved = false;
  std::string UnresolvedDetail;
  for (auto &[Obj, Ops] : ByObj) {
    ++Rep.Objects;
    // Per-(object, thread) sanity: one thread's operations cannot overlap
    // each other — the next invocation follows the previous response on
    // one monotonic clock.  A violation means the trace (or the clock) is
    // corrupt — fail closed.  Checked on invocation-sorted intervals so
    // the verdict is independent of record order within the file.
    {
      std::map<std::uint64_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
          Intervals;
      for (const OpRecord *R : Ops)
        Intervals[R->Tid].emplace_back(R->InvokeNs, R->ResponseNs);
      bool Bad = false;
      for (auto &[Tid, Iv] : Intervals) {
        (void)Tid;
        std::sort(Iv.begin(), Iv.end());
        for (std::size_t I = 1; I < Iv.size() && !Bad; ++I)
          Bad = Iv[I].first < Iv[I - 1].second;
        if (Bad)
          break;
      }
      if (Bad) {
        SawUnresolved = true;
        if (UnresolvedDetail.empty())
          UnresolvedDetail = "obj " + std::to_string(Obj) +
                             ": thread program order violates timestamps "
                             "(corrupt trace)";
        continue;
      }
    }

    std::stable_sort(Ops.begin(), Ops.end(),
                     [](const OpRecord *A, const OpRecord *B) {
                       return A->InvokeNs < B->InvokeNs;
                     });
    std::vector<Window> Windows = partitionWindows(Ops);

    SpecEngine Engine(Kind);
    // `Cur` accumulates quiescent windows that could not yet be committed:
    // a window whose post-state depends on which witness was found (see
    // queueStateAmbiguous) is merged with its successor instead of
    // committed, deferring the order choice until some dequeue (or the end
    // of the trace) pins it.
    Window Cur;
    std::uint64_t ObjWin = 0; // committed windows of THIS object
    for (std::size_t WI = 0; WI != Windows.size(); ++WI) {
      Cur.insert(Cur.end(), Windows[WI].begin(), Windows[WI].end());
      Rep.MaxWindowSeen =
          std::max<std::uint64_t>(Rep.MaxWindowSeen, Cur.size());
      if (Cur.size() > Opts.MaxWindowOps) {
        SawUnresolved = true;
        if (UnresolvedDetail.empty())
          UnresolvedDetail = objWindowTag(Obj, ObjWin) + ": " +
                             std::to_string(Cur.size()) +
                             " ops exceed the window cap (" +
                             std::to_string(Opts.MaxWindowOps) + ")";
        break; // downstream spec state is unknown: stop this object
      }
      WindowProblem P = buildProblem(Cur);
      LinearizeResult LR =
          findLinearization(P.Histories, Engine.spec(), Opts.MaxNodesPerWindow,
                            &P.Precedence, &P.Priority);
      Rep.NodesExplored += LR.NodesExplored;
      bool Stop = false;
      switch (LR.outcome()) {
      case LinearizeOutcome::Linearizable: {
        std::optional<SpecState> After = Engine.stateAfter(LR.Witness);
        if (!After) {
          SawUnresolved = true;
          if (UnresolvedDetail.empty())
            UnresolvedDetail = objWindowTag(Obj, ObjWin) +
                               ": internal error committing witness";
          Stop = true;
          break;
        }
        if (WI + 1 != Windows.size() && Kind == SpecKind::Queue &&
            queueStateAmbiguous(Cur, Engine.base(), *After))
          break; // keep Cur: the next window joins it
        Engine.commitState(std::move(*After));
        ++Rep.Windows;
        ++ObjWin;
        Rep.OpsAudited += Cur.size();
        Cur.clear();
        break;
      }
      case LinearizeOutcome::Refuted:
        // A concrete violation: no interleaving of this window satisfies
        // the spec under the timestamp-proven real-time order (and the
        // base state was only ever committed when witness-independent, so
        // the refutation cannot be an artifact of an earlier choice).
        // FAIL dominates every other verdict, so we can stop here.
        Rep.Outcome = AuditOutcome::Fail;
        Rep.Detail = objWindowTag(Obj, ObjWin) + ": no linearization of " +
                     std::to_string(Cur.size()) + " ops (explored " +
                     std::to_string(LR.NodesExplored) + " nodes)";
        Rep.WitnessObj = Obj;
        Rep.WitnessWindow = ObjWin;
        for (const OpRecord *R : Cur)
          Rep.WitnessOps.push_back(*R);
        return Rep;
      case LinearizeOutcome::BudgetExhausted:
        SawUnresolved = true;
        if (UnresolvedDetail.empty())
          UnresolvedDetail = objWindowTag(Obj, ObjWin) + ": search budget (" +
                             std::to_string(Opts.MaxNodesPerWindow) +
                             " nodes) exhausted";
        Stop = true;
        break;
      }
      if (Stop)
        break; // UNRESOLVED window: downstream spec state is unknown
    }
  }

  if (SawUnresolved) {
    Rep.Outcome = AuditOutcome::Unresolved;
    Rep.Detail = UnresolvedDetail;
  } else {
    Rep.Outcome = AuditOutcome::Pass;
  }
  return Rep;
}
