//===- audit/Trace.h - Recorded-trace files --------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk form of a recorded operation trace: one JSON document
/// carrying the spec hint, the drop count (part of the trace, because a
/// trace with drops can never audit PASS), and the flat record list.  The
/// writer streams (traces reach millions of records); the reader parses
/// with the in-tree JSON parser and FAILS CLOSED: any missing field,
/// wrong type, unknown method name, or response-before-invocation
/// timestamp rejects the whole file rather than auditing a best-effort
/// subset.  `ccal-audit` replays these files offline; the property tests
/// round-trip them; failure dumps embed them for corpus replay.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_AUDIT_TRACE_H
#define CCAL_AUDIT_TRACE_H

#include "audit/Recorder.h"

#include <string>
#include <vector>

namespace ccal {
namespace audit {

/// One recorded trace, in memory.
struct Trace {
  std::string Spec;           ///< spec-registry name hint ("" = none)
  std::uint64_t Dropped = 0;  ///< recorder drops during capture
  std::vector<OpRecord> Records;
};

/// Builds a Trace from one collected epoch (drops carried over).
Trace traceOf(const Collected &C, std::string Spec);

/// Renders \p T as the trace-file JSON document (compact, deterministic).
std::string traceToJson(const Trace &T);

/// Parses a trace document; false (with \p Error set) on any schema or
/// consistency violation — a rejected trace must never be audited.
bool traceFromJson(const std::string &Text, Trace &Out, std::string &Error);

/// Streams \p T to \p Path (the writer avoids materializing the JSON tree
/// for multi-million-record traces).  False with \p Error on I/O failure.
bool writeTraceFile(const std::string &Path, const Trace &T,
                    std::string &Error);

/// Reads and validates a trace file.
bool readTraceFile(const std::string &Path, Trace &Out, std::string &Error);

} // namespace audit
} // namespace ccal

#endif // CCAL_AUDIT_TRACE_H
