//===- audit/AuditChecker.h - Offline trace linearizability audit -*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline half of the trace auditor: takes a recorded Trace
/// (audit/Trace.h), partitions each object's history into windows at
/// quiescent cuts (instants no operation spans, derived from the
/// invocation/response timestamps), derives the real-time precedence
/// order inside each window (response(A) < invoke(B) forces A before B —
/// Herlihy & Wing's side condition, the thing that makes this
/// linearizability rather than sequential consistency), and drives the
/// objects/Linearize search per window against the named sequential
/// specification, carrying the spec state across windows.
///
/// Soundness of the split: a quiescent cut strictly precedes every later
/// invocation, so forcing earlier-window operations before later-window
/// operations adds exactly the precedence edges the timestamps already
/// imply — no admissible witness is gained or lost.
///
/// The verdict is fail-closed and three-way:
///   PASS       — every window produced a sequential witness AND the
///                recorder dropped nothing.  Only this outcome certifies.
///   FAIL       — some window's full search space was exhausted with no
///                witness: a concrete non-linearizable window, returned
///                as evidence.
///   UNRESOLVED — anything else: dropped records (the gap could hide the
///                violation), a window over the op cap, a search budget
///                exhausted, a malformed trace.  Never reported as PASS,
///                and never as FAIL — BudgetExhausted is not a
///                refutation.
///
/// Per Filipović et al. (cited in Linearize.h) a PASS witnesses that the
/// recorded execution contextually refines the atomic object; Doherty et
/// al.'s causal linearizability (PAPERS.md) weakens the precedence edges
/// to the causal order, so once the weak-memory backend lands, the same
/// window machinery runs with a sparser PrecedenceMap — the derivation is
/// the only piece that changes.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_AUDIT_AUDITCHECKER_H
#define CCAL_AUDIT_AUDITCHECKER_H

#include "audit/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {
namespace audit {

/// Budget knobs; exhausting any of them yields UNRESOLVED, never PASS.
struct AuditOptions {
  std::uint64_t MaxNodesPerWindow = std::uint64_t(1) << 22;
  std::size_t MaxWindowOps = std::size_t(1) << 16;
};

/// The fail-closed three-way verdict.
enum class AuditOutcome { Pass, Fail, Unresolved };

const char *outcomeName(AuditOutcome O);

/// Audit evidence and accounting.
struct AuditReport {
  AuditOutcome Outcome = AuditOutcome::Unresolved;
  std::string Detail; ///< human-readable reason for FAIL / UNRESOLVED

  std::uint64_t Objects = 0;       ///< distinct object identities audited
  std::uint64_t OpsAudited = 0;    ///< records that reached a PASSing window
  std::uint64_t Windows = 0;       ///< windows searched
  std::uint64_t MaxWindowSeen = 0; ///< largest window (ops)
  std::uint64_t NodesExplored = 0; ///< summed over all window searches

  /// FAIL evidence: the refuted window, small enough to eyeball and to
  /// check in as a corpus regression.
  std::uint64_t WitnessObj = 0;
  std::uint64_t WitnessWindow = 0;
  std::vector<OpRecord> WitnessOps;
};

/// Names of the registered sequential specs:
///   "ticket" — mutual-exclusion lock whose acq returns the acquisition
///              index (the FAI ticket) and rel the release index;
///   "lock"   — mutual-exclusion lock with uninformative (0) returns
///              (MCS, queuing: protocol and real-time overlap carry the
///              whole check);
///   "queue"  — FIFO queue of int64: enQ(v) returns 0, deQ returns the
///              head or -1 when empty.
std::vector<std::string> specNames();
bool hasSpec(const std::string &Name);

/// Audits every object identity in \p T against spec \p Spec.  Objects
/// are independent: each gets its own spec state and windows; the verdict
/// aggregates fail-closed (any FAIL dominates, else any UNRESOLVED, else
/// PASS).
AuditReport auditTrace(const Trace &T, const std::string &Spec,
                       const AuditOptions &Opts = AuditOptions());

} // namespace audit
} // namespace ccal

#endif // CCAL_AUDIT_AUDITCHECKER_H
