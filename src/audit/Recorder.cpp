//===- audit/Recorder.cpp - Per-thread operation trace recorder --------------===//

#include "audit/Recorder.h"

#include "audit/Trace.h"
#include "obs/Metrics.h"
#include "support/Clock.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

using namespace ccal;
using namespace ccal::audit;

const char *audit::methodName(Method M) {
  switch (M) {
  case Method::Acq:
    return "acq";
  case Method::Rel:
    return "rel";
  case Method::Enq:
    return "enQ";
  case Method::Deq:
    return "deQ";
  }
  return "?";
}

bool audit::methodFromName(const std::string &Name, Method &Out) {
  if (Name == "acq")
    Out = Method::Acq;
  else if (Name == "rel")
    Out = Method::Rel;
  else if (Name == "enQ")
    Out = Method::Enq;
  else if (Name == "deQ")
    Out = Method::Deq;
  else
    return false;
  return true;
}

namespace {

std::atomic<bool> Enabled{false};
std::atomic<std::size_t> Capacity{std::size_t(1) << 16};

/// Bumped by resetForTest so threads re-register their cached rings.
std::atomic<std::uint64_t> Generation{1};

/// One thread's ring.  Single writer (the owning thread), single reader
/// (the collector, serialized by the registry mutex).  The writer
/// publishes records with a release-store of Head; the collector acquires
/// Head, reads the slots, and publishes consumption with a release-store
/// of Tail, which the writer acquires before reusing a slot — so slot
/// payloads themselves need no atomics.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t Cap, std::uint64_t Tid)
      : Slots(Cap), Tid(Tid) {}

  std::vector<OpRecord> Slots;
  const std::uint64_t Tid;
  alignas(64) std::atomic<std::uint64_t> Head{0}; ///< next write index
  alignas(64) std::atomic<std::uint64_t> Tail{0}; ///< next read index
  std::atomic<std::uint64_t> Dropped{0};
};

struct Registry {
  std::mutex Mu;
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
  std::uint64_t NextTid = 1;
  std::uint64_t Epoch = 0;
  std::uint64_t DroppedCollected = 0; ///< drops already reported in epochs
};

Registry &registry() {
  // Leaked on purpose (the obs precedent): exiting threads may touch
  // their rings after a plain static would have been destroyed.
  static Registry *R = new Registry;
  return *R;
}

/// The calling thread's ring, allocated and registered on first use.
ThreadBuffer &threadBuffer() {
  struct Cached {
    std::shared_ptr<ThreadBuffer> Buf;
    std::uint64_t Gen = 0;
  };
  thread_local Cached C;
  std::uint64_t Gen = Generation.load(std::memory_order_acquire);
  if (!C.Buf || C.Gen != Gen) {
    Registry &R = registry();
    std::lock_guard<std::mutex> L(R.Mu);
    C.Buf = std::make_shared<ThreadBuffer>(
        Capacity.load(std::memory_order_relaxed), R.NextTid++);
    C.Gen = Gen;
    R.Buffers.push_back(C.Buf);
  }
  return *C.Buf;
}

struct EnvInit {
  EnvInit() { initFromEnv(); }
} EnvInitializer;

} // namespace

#if !defined(CCAL_NO_AUDIT)

bool audit::enabled() { return Enabled.load(std::memory_order_relaxed); }

std::uint64_t audit::invokeNow() {
  if (!Enabled.load(std::memory_order_relaxed))
    return 0;
  std::uint64_t Now = support::monotonicNowNs();
  return Now ? Now : 1; // 0 is the disabled sentinel
}

void audit::record(const void *Obj, Method M, bool HasArg, std::int64_t Arg,
                   std::int64_t Ret, std::uint64_t InvokeNs) {
  ThreadBuffer &B = threadBuffer();
  std::uint64_t H = B.Head.load(std::memory_order_relaxed);
  std::uint64_t T = B.Tail.load(std::memory_order_acquire);
  if (H - T >= B.Slots.size()) {
    // Bounded memory: drop the NEW record (history already committed is
    // never overwritten) and make the gap loud.
    B.Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  OpRecord &S = B.Slots[H % B.Slots.size()];
  S.Obj = reinterpret_cast<std::uintptr_t>(Obj);
  S.Tid = B.Tid;
  S.M = M;
  S.HasArg = HasArg;
  S.Arg = Arg;
  S.Ret = Ret;
  S.InvokeNs = InvokeNs;
  S.ResponseNs = support::monotonicNowNs();
  B.Head.store(H + 1, std::memory_order_release);
}

#endif // !CCAL_NO_AUDIT

void audit::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

namespace {

std::string &dumpPath() {
  static std::string Path;
  return Path;
}

/// Exit-dump for CCAL_AUDIT=<path> (mirrors CCAL_TRACE): collect whatever
/// the rings still hold and write a spec-less trace file — replay it with
/// `ccal-audit --spec NAME <path>`.
void dumpAtExit() {
  Collected C = audit::collect();
  std::string Err;
  if (!audit::writeTraceFile(dumpPath(), traceOf(C, ""), Err))
    std::fprintf(stderr, "ccal audit: %s\n", Err.c_str());
}

} // namespace

bool audit::initFromEnv() {
  if (const char *Cap = std::getenv("CCAL_AUDIT_CAPACITY"))
    if (std::size_t N = std::strtoull(Cap, nullptr, 10))
      setCapacity(N);
  const char *V = std::getenv("CCAL_AUDIT");
  if (V && V[0] != '\0' && !(V[0] == '0' && V[1] == '\0')) {
    setEnabled(true);
    // "1" records in-process only; any other value names an exit-dump
    // path for the trace still sitting in the rings at exit.
    if (!(V[0] == '1' && V[1] == '\0') && dumpPath().empty()) {
      dumpPath() = V;
      std::atexit(dumpAtExit);
    }
  }
  return Enabled.load(std::memory_order_relaxed);
}

void audit::setCapacity(std::size_t Slots) {
  Capacity.store(Slots < 8 ? 8 : Slots, std::memory_order_relaxed);
}

std::size_t audit::capacity() {
  return Capacity.load(std::memory_order_relaxed);
}

Collected audit::collect() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  Collected Out;
  Out.Epoch = ++R.Epoch;
  std::uint64_t DroppedNow = 0;
  for (const std::shared_ptr<ThreadBuffer> &BP : R.Buffers) {
    ThreadBuffer &B = *BP;
    std::uint64_t T = B.Tail.load(std::memory_order_relaxed);
    std::uint64_t H = B.Head.load(std::memory_order_acquire);
    for (; T != H; ++T)
      Out.Records.push_back(B.Slots[T % B.Slots.size()]);
    B.Tail.store(T, std::memory_order_release);
    DroppedNow += B.Dropped.load(std::memory_order_relaxed);
  }
  Out.DroppedTotal = DroppedNow;
  Out.Dropped = DroppedNow - R.DroppedCollected;
  R.DroppedCollected = DroppedNow;
  if (obs::enabled()) {
    obs::counterAdd("audit.records_collected", Out.Records.size());
    obs::counterAdd("audit.collections", 1);
    if (Out.Dropped)
      obs::counterAdd("audit.dropped", Out.Dropped);
    obs::gaugeSet("audit.threads",
                  static_cast<std::int64_t>(R.Buffers.size()));
  }
  return Out;
}

std::size_t audit::threadBufferCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  return R.Buffers.size();
}

std::uint64_t audit::droppedTotal() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  std::uint64_t N = 0;
  for (const std::shared_ptr<ThreadBuffer> &B : R.Buffers)
    N += B->Dropped.load(std::memory_order_relaxed);
  return N;
}

void audit::resetForTest() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  R.Buffers.clear();
  R.NextTid = 1;
  R.Epoch = 0;
  R.DroppedCollected = 0;
  Generation.fetch_add(1, std::memory_order_acq_rel);
}
