//===- audit/Recorder.h - Per-thread operation trace recorder --*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The always-on trace recorder behind the runtime objects (src/runtime/):
/// every public operation of an audited object records one OpRecord —
/// object identity, method, argument, return value, and invocation /
/// response timestamps from the shared monotonic clock (support/Clock.h)
/// — into a lock-free per-thread ring buffer.  An offline checker
/// (audit/AuditChecker.h) later replays the collected history against the
/// object's sequential specification via the objects/Linearize search,
/// turning "verified for all executions up to a bound" into "additionally
/// monitored at production scale".
///
/// Cost model, mirroring obs/Metrics.h: when disabled (the default) the
/// hot path is one relaxed atomic load returning 0 and NOTHING is
/// allocated — no thread buffers, no registry entries; "disabled is free"
/// is a tested property.  When enabled, recording is two clock reads plus
/// one ring-slot write; no locks, no allocation after a thread's first
/// record.  Building with -DCCAL_NO_AUDIT compiles the hooks out of the
/// runtime objects entirely (the hooks become constant-folded no-ops),
/// for the purist §6 latency experiments.
///
/// Memory is bounded: each thread's ring holds a fixed number of slots
/// (CCAL_AUDIT_CAPACITY, default 1<<16); when a collector does not drain
/// fast enough the writer DROPS the new record and counts it, rather than
/// overwriting history or growing without bound.  Dropped records are a
/// soundness event, not a statistic: the audit checker reports UNRESOLVED
/// — never PASS — for any collection window with drops (the gap could
/// hide exactly the non-linearizable behavior being hunted).  Drops are
/// also published to the obs registry as `audit.dropped`.
///
/// Collection is epoch-based: collect() drains every registered thread
/// buffer (records committed by the owner's release-store of the ring
/// head are guaranteed visible) and stamps the batch with a fresh epoch
/// number.  Writers never block on collection and collection never blocks
/// writers; a record racing a collection simply lands in the next epoch.
/// Buffers are owned jointly by the recording thread and the registry, so
/// a thread may exit before its trace is collected without losing events.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_AUDIT_RECORDER_H
#define CCAL_AUDIT_RECORDER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ccal {
namespace audit {

/// The audited methods of the runtime objects.  A closed enum keeps ring
/// slots compact; trace files spell the names out (methodName).
enum class Method : std::uint8_t {
  Acq = 1, ///< lock acquire; Ret = acquisition ticket where the object has one
  Rel,     ///< lock release
  Enq,     ///< queue enqueue; Arg = value
  Deq,     ///< queue dequeue; Ret = value, -1 when empty
};

/// Wire/spec name of \p M ("acq", "rel", "enQ", "deQ" — the queue names
/// match the model-side SharedQueue spec events).
const char *methodName(Method M);

/// Inverse of methodName; false when \p Name is unknown.
bool methodFromName(const std::string &Name, Method &Out);

/// One recorded operation.
struct OpRecord {
  std::uint64_t Obj = 0;  ///< object identity (address of the instance)
  std::uint64_t Tid = 0;  ///< dense recorder thread id (1-based)
  Method M = Method::Acq;
  bool HasArg = false;
  std::int64_t Arg = 0;
  std::int64_t Ret = 0;
  std::uint64_t InvokeNs = 0;   ///< shared monotonic clock at invocation
  std::uint64_t ResponseNs = 0; ///< shared monotonic clock at response
};

/// One epoch's worth of collected trace.
struct Collected {
  std::uint64_t Epoch = 0;            ///< 1-based, bumped per collect()
  std::vector<OpRecord> Records;      ///< per-thread program order preserved
  std::uint64_t Dropped = 0;          ///< drops in this epoch (0 required for PASS)
  std::uint64_t DroppedTotal = 0;     ///< cumulative drops since enable/reset
};

#if defined(CCAL_NO_AUDIT)

// Compile-time kill switch: the runtime objects' hooks fold to constants
// and the recorder library need not even be linked.
inline bool enabled() { return false; }
inline std::uint64_t invokeNow() { return 0; }
inline void record(const void *, Method, bool, std::int64_t, std::int64_t,
                   std::uint64_t) {}

#else

/// True when recording is on.  One relaxed atomic load.
bool enabled();

/// Invocation-side hook: returns 0 when disabled, else a nonzero
/// monotonic timestamp to pass to record() at the response side.  The
/// nonzero guarantee lets call sites use the timestamp itself as the
/// "was enabled at invocation" flag, paying a single branch at response.
std::uint64_t invokeNow();

/// Response-side hook: appends one record to the calling thread's ring
/// (allocating the ring on the thread's first record).  \p InvokeNs must
/// be a value invokeNow() returned on this thread; the response timestamp
/// is taken here.  Drops (ring full) are counted, never silently lost.
void record(const void *Obj, Method M, bool HasArg, std::int64_t Arg,
            std::int64_t Ret, std::uint64_t InvokeNs);

#endif // CCAL_NO_AUDIT

/// Flips recording.  Enabling is what arms invokeNow(); disabling stops
/// new records but keeps already-recorded history collectible.
void setEnabled(bool On);

/// Reads CCAL_AUDIT (non-empty, non-"0" enables; any value other than
/// "1" additionally names an exit-dump path for whatever the rings hold
/// at exit, replayable with `ccal-audit --spec NAME`) and
/// CCAL_AUDIT_CAPACITY (slots per thread ring); called once
/// automatically before main.
bool initFromEnv();

/// Sets the per-thread ring capacity in slots for buffers created after
/// the call (existing rings keep theirs).  Clamped to a minimum of 8.
void setCapacity(std::size_t Slots);
std::size_t capacity();

/// Drains every committed record from every registered thread buffer into
/// a fresh epoch.  Safe to call concurrently with recording (records
/// racing the cut land in the next epoch); at most one collector at a
/// time (internally serialized).  Per-thread order is preserved within
/// the batch.
Collected collect();

/// Number of thread ring buffers currently registered (0 while disabled
/// and never enabled: disabled mode must not allocate).
std::size_t threadBufferCount();

/// Cumulative dropped-record count since enable/reset.
std::uint64_t droppedTotal();

/// Test hook: forgets all buffers, zeroes counters, and invalidates every
/// thread's cached ring so later records re-register.  Callers must
/// ensure no thread is concurrently recording.
void resetForTest();

} // namespace audit
} // namespace ccal

#endif // CCAL_AUDIT_RECORDER_H
