//===- lang/Parser.cpp - ClightX parser -------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "obs/Trace.h"
#include "support/Check.h"
#include "support/Text.h"

using namespace ccal;

namespace {

/// Recursive-descent parser over the token stream.  Errors unwind by
/// setting Err and returning null nodes; the driver surfaces the first one.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  ClightModule run(const std::string &Name, std::string &Error) {
    ClightModule M;
    M.Name = Name;
    while (!peek().is(TokenKind::Eof) && Err.empty())
      parseTopDecl(M);
    Error = Err;
    return M;
  }

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  Token take() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool accept(TokenKind K) {
    if (!peek().is(K))
      return false;
    take();
    return true;
  }
  void expect(TokenKind K, const char *Ctx) {
    if (accept(K))
      return;
    error(strFormat("expected %s %s, found %s", tokenKindName(K), Ctx,
                    tokenKindName(peek().Kind)));
  }
  void error(const std::string &Msg) {
    if (Err.empty())
      Err = strFormat("line %d: %s", peek().Line, Msg.c_str());
  }

  static bool isTypeKw(TokenKind K) {
    return K == TokenKind::KwInt || K == TokenKind::KwUint ||
           K == TokenKind::KwVoid;
  }

  /// Accepts 'volatile'? type; returns true when the type is void.
  bool parseType(const char *Ctx) {
    accept(TokenKind::KwVolatile);
    if (accept(TokenKind::KwVoid))
      return true;
    if (accept(TokenKind::KwInt) || accept(TokenKind::KwUint))
      return false;
    error(strFormat("expected a type %s", Ctx));
    return false;
  }

  void parseTopDecl(ClightModule &M) {
    bool IsExtern = accept(TokenKind::KwExtern);
    bool IsVoid = parseType("at top level");
    if (!Err.empty())
      return;
    Token Name = peek();
    expect(TokenKind::Ident, "as declaration name");
    if (!Err.empty())
      return;

    if (peek().is(TokenKind::LParen)) {
      parseFunc(M, Name, IsExtern, IsVoid);
      return;
    }
    // Global variable(s): int g; int g = 3; int a[4]; int x, y;
    if (IsExtern || IsVoid) {
      error("globals must be non-extern ints");
      return;
    }
    parseGlobalTail(M, Name);
    while (Err.empty() && accept(TokenKind::Comma)) {
      Token Next = peek();
      expect(TokenKind::Ident, "in global declarator list");
      if (Err.empty())
        parseGlobalTail(M, Next);
    }
    expect(TokenKind::Semi, "after global declaration");
  }

  void parseGlobalTail(ClightModule &M, const Token &Name) {
    GlobalDecl G;
    G.Name = Name.Text;
    G.Line = Name.Line;
    if (accept(TokenKind::LBracket)) {
      Token Sz = peek();
      expect(TokenKind::IntLit, "as array size");
      expect(TokenKind::RBracket, "after array size");
      G.Size = static_cast<int>(Sz.IntVal);
      if (G.Size <= 0)
        error("array size must be positive");
    }
    if (accept(TokenKind::Assign)) {
      bool Neg = accept(TokenKind::Minus);
      Token V = peek();
      expect(TokenKind::IntLit, "as global initializer");
      G.Init.push_back(Neg ? -V.IntVal : V.IntVal);
    }
    if (G.Init.empty())
      G.Init.assign(static_cast<size_t>(G.Size), 0);
    else
      G.Init.resize(static_cast<size_t>(G.Size), 0);
    M.Globals.push_back(std::move(G));
  }

  void parseFunc(ClightModule &M, const Token &Name, bool IsExtern,
                 bool IsVoid) {
    FuncDecl F;
    F.Name = Name.Text;
    F.IsExtern = IsExtern;
    F.ReturnsVoid = IsVoid;
    F.Line = Name.Line;
    expect(TokenKind::LParen, "after function name");
    if (!accept(TokenKind::RParen)) {
      // Either "(void)" or a parameter list.
      if (peek().is(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
        take();
        take();
      } else {
        do {
          bool PVoid = parseType("for a parameter");
          if (PVoid)
            error("parameters cannot be void");
          Token P = peek();
          expect(TokenKind::Ident, "as parameter name");
          F.Params.push_back(P.Text);
        } while (Err.empty() && accept(TokenKind::Comma));
        expect(TokenKind::RParen, "after parameters");
      }
    }
    if (IsExtern) {
      expect(TokenKind::Semi, "after extern declaration");
    } else {
      F.Body = parseBlock();
    }
    M.Funcs.push_back(std::move(F));
  }

  StmtPtr makeStmt(Stmt::Kind K, int Line) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Line = Line;
    return S;
  }

  StmtPtr parseBlock() {
    int Line = peek().Line;
    expect(TokenKind::LBrace, "to open a block");
    StmtPtr S = makeStmt(Stmt::Kind::Block, Line);
    while (Err.empty() && !peek().is(TokenKind::RBrace) &&
           !peek().is(TokenKind::Eof))
      S->Body.push_back(parseStmt());
    expect(TokenKind::RBrace, "to close a block");
    return S;
  }

  StmtPtr parseStmt() {
    int Line = peek().Line;
    switch (peek().Kind) {
    case TokenKind::LBrace:
      return parseBlock();
    case TokenKind::KwIf: {
      take();
      StmtPtr S = makeStmt(Stmt::Kind::If, Line);
      expect(TokenKind::LParen, "after 'if'");
      S->Cond = parseExpr();
      expect(TokenKind::RParen, "after if condition");
      S->Then = parseStmt();
      if (accept(TokenKind::KwElse))
        S->Else = parseStmt();
      return S;
    }
    case TokenKind::KwWhile: {
      take();
      StmtPtr S = makeStmt(Stmt::Kind::While, Line);
      expect(TokenKind::LParen, "after 'while'");
      S->Cond = parseExpr();
      expect(TokenKind::RParen, "after while condition");
      S->Then = parseStmt();
      return S;
    }
    case TokenKind::KwFor:
      return parseFor();
    case TokenKind::KwReturn: {
      take();
      StmtPtr S = makeStmt(Stmt::Kind::Return, Line);
      if (!peek().is(TokenKind::Semi))
        S->A = parseExpr();
      expect(TokenKind::Semi, "after return");
      return S;
    }
    case TokenKind::KwBreak: {
      take();
      expect(TokenKind::Semi, "after 'break'");
      return makeStmt(Stmt::Kind::Break, Line);
    }
    case TokenKind::KwContinue: {
      take();
      expect(TokenKind::Semi, "after 'continue'");
      return makeStmt(Stmt::Kind::Continue, Line);
    }
    case TokenKind::KwInt:
    case TokenKind::KwUint:
    case TokenKind::KwVolatile: {
      parseType("for a local declaration");
      StmtPtr S = makeStmt(Stmt::Kind::LocalDecl, Line);
      Token Name = peek();
      expect(TokenKind::Ident, "as local variable name");
      S->Name = Name.Text;
      if (accept(TokenKind::Assign))
        S->A = parseExpr();
      expect(TokenKind::Semi, "after local declaration");
      return S;
    }
    default:
      break;
    }
    // Assignment or expression statement.
    if (peek().is(TokenKind::Ident)) {
      if (peek(1).is(TokenKind::Assign)) {
        Token Name = take();
        take(); // '='
        StmtPtr S = makeStmt(Stmt::Kind::Assign, Line);
        S->Name = Name.Text;
        S->A = parseExpr();
        expect(TokenKind::Semi, "after assignment");
        return S;
      }
      if (peek(1).is(TokenKind::LBracket)) {
        // Could be a[i] = e; or an expression starting with a[i].
        size_t Save = Pos;
        Token Name = take();
        take(); // '['
        ExprPtr Idx = parseExpr();
        if (Err.empty() && accept(TokenKind::RBracket) &&
            accept(TokenKind::Assign)) {
          StmtPtr S = makeStmt(Stmt::Kind::IndexAssign, Line);
          S->Name = Name.Text;
          S->B = std::move(Idx);
          S->A = parseExpr();
          expect(TokenKind::Semi, "after array assignment");
          return S;
        }
        Pos = Save; // reparse as an expression
        if (!Err.empty())
          return makeStmt(Stmt::Kind::Block, Line);
      }
    }
    StmtPtr S = makeStmt(Stmt::Kind::ExprStmt, Line);
    S->A = parseExpr();
    expect(TokenKind::Semi, "after expression statement");
    return S;
  }

  /// Desugars `for (init; cond; step) body` into
  /// `{ init; while (cond) { body; step; } }`.
  StmtPtr parseFor() {
    int Line = peek().Line;
    take(); // 'for'
    expect(TokenKind::LParen, "after 'for'");
    StmtPtr Outer = makeStmt(Stmt::Kind::Block, Line);
    if (!peek().is(TokenKind::Semi)) {
      // Reuse statement parsing for the init clause (consumes the ';').
      Outer->Body.push_back(parseStmt());
    } else {
      take();
    }
    StmtPtr Loop = makeStmt(Stmt::Kind::While, Line);
    if (!peek().is(TokenKind::Semi))
      Loop->Cond = parseExpr();
    else
      Loop->Cond = Expr::intLit(1, Line);
    expect(TokenKind::Semi, "after for condition");
    StmtPtr Step;
    if (!peek().is(TokenKind::RParen)) {
      // Step is an assignment or expression without the trailing ';'.
      if (peek().is(TokenKind::Ident) && peek(1).is(TokenKind::Assign)) {
        Token Name = take();
        take();
        Step = makeStmt(Stmt::Kind::Assign, Line);
        Step->Name = Name.Text;
        Step->A = parseExpr();
      } else {
        Step = makeStmt(Stmt::Kind::ExprStmt, Line);
        Step->A = parseExpr();
      }
    }
    expect(TokenKind::RParen, "after for clauses");
    StmtPtr BodyStmt = parseStmt();
    StmtPtr LoopBody = makeStmt(Stmt::Kind::Block, Line);
    LoopBody->Body.push_back(std::move(BodyStmt));
    if (Step)
      LoopBody->Body.push_back(std::move(Step));
    Loop->Then = std::move(LoopBody);
    Outer->Body.push_back(std::move(Loop));
    return Outer;
  }

  // Expression parsing by precedence climbing.
  ExprPtr parseExpr() { return parseBinary(0); }

  static int precedenceOf(TokenKind K) {
    switch (K) {
    case TokenKind::PipePipe:
      return 1;
    case TokenKind::AmpAmp:
      return 2;
    case TokenKind::EqEq:
    case TokenKind::NotEq:
      return 3;
    case TokenKind::Less:
    case TokenKind::LessEq:
    case TokenKind::Greater:
    case TokenKind::GreaterEq:
      return 4;
    case TokenKind::Plus:
    case TokenKind::Minus:
      return 5;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent:
      return 6;
    default:
      return -1;
    }
  }

  static const char *opSpelling(TokenKind K) {
    switch (K) {
    case TokenKind::PipePipe:
      return "||";
    case TokenKind::AmpAmp:
      return "&&";
    case TokenKind::EqEq:
      return "==";
    case TokenKind::NotEq:
      return "!=";
    case TokenKind::Less:
      return "<";
    case TokenKind::LessEq:
      return "<=";
    case TokenKind::Greater:
      return ">";
    case TokenKind::GreaterEq:
      return ">=";
    case TokenKind::Plus:
      return "+";
    case TokenKind::Minus:
      return "-";
    case TokenKind::Star:
      return "*";
    case TokenKind::Slash:
      return "/";
    case TokenKind::Percent:
      return "%";
    default:
      return "?";
    }
  }

  ExprPtr parseBinary(int MinPrec) {
    ExprPtr Lhs = parseUnary();
    while (Err.empty()) {
      int Prec = precedenceOf(peek().Kind);
      if (Prec < 0 || Prec < MinPrec)
        break;
      Token Op = take();
      ExprPtr Rhs = parseBinary(Prec + 1);
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Binary;
      E->Op = opSpelling(Op.Kind);
      E->Line = Op.Line;
      E->Args.push_back(std::move(Lhs));
      E->Args.push_back(std::move(Rhs));
      Lhs = std::move(E);
    }
    return Lhs;
  }

  ExprPtr parseUnary() { return parseUnaryImpl(peek().Line); }

  ExprPtr parseUnaryImpl(int Line) {
    if (peek().is(TokenKind::Minus)) {
      take();
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Unary;
      E->Op = "-";
      E->Line = Line;
      E->Args.push_back(parseUnaryImpl(peek().Line));
      return E;
    }
    if (peek().is(TokenKind::Bang)) {
      take();
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Unary;
      E->Op = "!";
      E->Line = Line;
      E->Args.push_back(parseUnaryImpl(peek().Line));
      return E;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    int Line = peek().Line;
    if (peek().is(TokenKind::IntLit)) {
      Token T = take();
      return Expr::intLit(T.IntVal, Line);
    }
    if (accept(TokenKind::LParen)) {
      ExprPtr E = parseExpr();
      expect(TokenKind::RParen, "to close a parenthesized expression");
      return E;
    }
    if (peek().is(TokenKind::Ident)) {
      Token Name = take();
      if (accept(TokenKind::LParen)) {
        auto E = std::make_unique<Expr>();
        E->K = Expr::Kind::Call;
        E->Name = Name.Text;
        E->Line = Line;
        if (!accept(TokenKind::RParen)) {
          do
            E->Args.push_back(parseExpr());
          while (Err.empty() && accept(TokenKind::Comma));
          expect(TokenKind::RParen, "after call arguments");
        }
        return E;
      }
      if (accept(TokenKind::LBracket)) {
        auto E = std::make_unique<Expr>();
        E->K = Expr::Kind::Index;
        E->Name = Name.Text;
        E->Line = Line;
        E->Args.push_back(parseExpr());
        expect(TokenKind::RBracket, "after array index");
        return E;
      }
      return Expr::var(Name.Text, Line);
    }
    error(strFormat("expected an expression, found %s",
                    tokenKindName(peek().Kind)));
    return Expr::intLit(0, Line);
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

ParseResult ccal::parseModule(const std::string &ModuleName,
                              const std::string &Source) {
  obs::Span ParseSpan("compcertx.parse", "compcertx");
  ParseResult Out;
  LexResult Lexed = lex(Source);
  if (!Lexed.ok()) {
    Out.Error = Lexed.Error;
    return Out;
  }
  Parser P(std::move(Lexed.Tokens));
  Out.Module = P.run(ModuleName, Out.Error);
  return Out;
}

ClightModule ccal::parseModuleOrDie(const std::string &ModuleName,
                                    const std::string &Source) {
  ParseResult R = parseModule(ModuleName, Source);
  if (!R.ok()) {
    reportFatal(("parse error in module " + ModuleName + ": " + R.Error)
                    .c_str(),
                __FILE__, __LINE__);
  }
  return std::move(R.Module);
}
