//===- lang/TypeCheck.h - ClightX semantic analysis ------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for ClightX: resolves identifiers to local slots or
/// globals, checks call arity and void-value misuse, and annotates the AST
/// (Expr::LocalSlot, Expr::CalleeExtern, FuncDecl::NumSlots) for the
/// interpreter and the code generator.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_LANG_TYPECHECK_H
#define CCAL_LANG_TYPECHECK_H

#include "lang/Ast.h"

#include <string>

namespace ccal {

/// Outcome of semantic analysis.
struct TypeCheckResult {
  std::string Error; ///< first diagnostic; empty on success
  bool ok() const { return Error.empty(); }
};

/// Checks and annotates \p M in place.
TypeCheckResult typeCheck(ClightModule &M);

/// Checks and aborts on error (for compile-time-known modules).
void typeCheckOrDie(ClightModule &M);

} // namespace ccal

#endif // CCAL_LANG_TYPECHECK_H
