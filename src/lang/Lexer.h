//===- lang/Lexer.h - ClightX lexer ----------------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for ClightX.  Supports `//` and `/* */` comments and
/// decimal/hex integer literals.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_LANG_LEXER_H
#define CCAL_LANG_LEXER_H

#include "lang/Token.h"

#include <optional>
#include <string>
#include <vector>

namespace ccal {

/// Outcome of lexing: the token stream or a diagnostic.
struct LexResult {
  std::vector<Token> Tokens;
  std::string Error; ///< empty on success

  bool ok() const { return Error.empty(); }
};

/// Lexes \p Source; the final token is always Eof on success.
LexResult lex(const std::string &Source);

} // namespace ccal

#endif // CCAL_LANG_LEXER_H
