//===- lang/Parser.h - ClightX parser --------------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for ClightX.  `for` loops are desugared into
/// `while`; `volatile` is accepted and ignored (the model's shared state
/// lives behind primitives, so the qualifier is documentation only).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_LANG_PARSER_H
#define CCAL_LANG_PARSER_H

#include "lang/Ast.h"

#include <string>

namespace ccal {

/// Parse outcome: the module or a diagnostic.
struct ParseResult {
  ClightModule Module;
  std::string Error; ///< empty on success

  bool ok() const { return Error.empty(); }
};

/// Parses \p Source into a module named \p ModuleName.
ParseResult parseModule(const std::string &ModuleName,
                        const std::string &Source);

/// Convenience used everywhere in tests and objects: parses and aborts on
/// any syntax error (the source is a compile-time-known module).
ClightModule parseModuleOrDie(const std::string &ModuleName,
                              const std::string &Source);

} // namespace ccal

#endif // CCAL_LANG_PARSER_H
