//===- lang/TypeCheck.cpp - ClightX semantic analysis ----------------------===//

#include "lang/TypeCheck.h"

#include "obs/Trace.h"
#include "support/Check.h"
#include "support/Text.h"

#include <map>
#include <vector>

using namespace ccal;

namespace {

class Checker {
public:
  explicit Checker(ClightModule &M) : M(M) {}

  std::string run() {
    for (FuncDecl &F : M.Funcs) {
      if (F.IsExtern)
        continue;
      checkFunc(F);
      if (!Err.empty())
        break;
    }
    return Err;
  }

private:
  void error(int Line, const std::string &Msg) {
    if (Err.empty())
      Err = strFormat("line %d: %s", Line, Msg.c_str());
  }

  void checkFunc(FuncDecl &F) {
    Scopes.clear();
    NextSlot = 0;
    pushScope();
    for (const std::string &P : F.Params)
      declare(P, F.Line);
    CCAL_CHECK(F.Body != nullptr, "defined function must have a body");
    checkStmt(*F.Body);
    popScope();
    F.NumSlots = NextSlot;
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  int declare(const std::string &Name, int Line) {
    auto &Top = Scopes.back();
    if (Top.count(Name)) {
      error(Line, "redeclaration of '" + Name + "' in the same scope");
      return Top[Name];
    }
    int Slot = NextSlot++;
    Top[Name] = Slot;
    return Slot;
  }

  /// Returns the slot of a visible local, or -1.
  int lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return F->second;
    }
    return -1;
  }

  void checkStmt(Stmt &S) {
    if (!Err.empty())
      return;
    switch (S.K) {
    case Stmt::Kind::Block:
      pushScope();
      for (StmtPtr &Child : S.Body)
        checkStmt(*Child);
      popScope();
      return;
    case Stmt::Kind::If:
      checkExpr(*S.Cond, /*ValueUsed=*/true);
      checkStmt(*S.Then);
      if (S.Else)
        checkStmt(*S.Else);
      return;
    case Stmt::Kind::While:
      checkExpr(*S.Cond, true);
      ++LoopDepth;
      checkStmt(*S.Then);
      --LoopDepth;
      return;
    case Stmt::Kind::Return:
      if (S.A)
        checkExpr(*S.A, true);
      return;
    case Stmt::Kind::LocalDecl:
      if (S.A)
        checkExpr(*S.A, true);
      S.LocalSlot = declare(S.Name, S.Line);
      return;
    case Stmt::Kind::Assign: {
      checkExpr(*S.A, true);
      int Slot = lookupLocal(S.Name);
      if (Slot >= 0) {
        S.LocalSlot = Slot;
        return;
      }
      const GlobalDecl *G = M.findGlobal(S.Name);
      if (!G) {
        error(S.Line, "assignment to undeclared variable '" + S.Name + "'");
        return;
      }
      if (G->Size != 1)
        error(S.Line, "cannot assign to array '" + S.Name + "' as a scalar");
      S.LocalSlot = -1;
      return;
    }
    case Stmt::Kind::IndexAssign: {
      checkExpr(*S.B, true);
      checkExpr(*S.A, true);
      const GlobalDecl *G = M.findGlobal(S.Name);
      if (!G)
        error(S.Line, "indexing undeclared global '" + S.Name + "'");
      return;
    }
    case Stmt::Kind::ExprStmt:
      checkExpr(*S.A, /*ValueUsed=*/false);
      return;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      if (LoopDepth == 0)
        error(S.Line, "break/continue outside of a loop");
      return;
    }
    CCAL_UNREACHABLE("unknown statement kind");
  }

  void checkExpr(Expr &E, bool ValueUsed) {
    if (!Err.empty())
      return;
    switch (E.K) {
    case Expr::Kind::IntLit:
      return;
    case Expr::Kind::Var: {
      int Slot = lookupLocal(E.Name);
      if (Slot >= 0) {
        E.LocalSlot = Slot;
        return;
      }
      const GlobalDecl *G = M.findGlobal(E.Name);
      if (!G) {
        error(E.Line, "use of undeclared variable '" + E.Name + "'");
        return;
      }
      if (G->Size != 1)
        error(E.Line, "array '" + E.Name + "' used as a scalar");
      E.LocalSlot = -1;
      return;
    }
    case Expr::Kind::Index: {
      const GlobalDecl *G = M.findGlobal(E.Name);
      if (!G) {
        error(E.Line, "indexing undeclared global '" + E.Name + "'");
        return;
      }
      if (lookupLocal(E.Name) >= 0)
        error(E.Line, "local variable '" + E.Name + "' cannot be indexed");
      checkExpr(*E.Args[0], true);
      return;
    }
    case Expr::Kind::Call: {
      const FuncDecl *F = M.findFunc(E.Name);
      if (!F) {
        error(E.Line, "call to undeclared function '" + E.Name + "'");
        return;
      }
      if (F->Params.size() != E.Args.size()) {
        error(E.Line,
              strFormat("call to '%s' with %zu arguments, expected %zu",
                        E.Name.c_str(), E.Args.size(), F->Params.size()));
        return;
      }
      if (ValueUsed && F->ReturnsVoid) {
        error(E.Line, "void function '" + E.Name + "' used as a value");
        return;
      }
      E.CalleeExtern = F->IsExtern;
      for (ExprPtr &A : E.Args)
        checkExpr(*A, true);
      return;
    }
    case Expr::Kind::Unary:
      checkExpr(*E.Args[0], true);
      return;
    case Expr::Kind::Binary:
      checkExpr(*E.Args[0], true);
      checkExpr(*E.Args[1], true);
      return;
    }
    CCAL_UNREACHABLE("unknown expression kind");
  }

  ClightModule &M;
  std::vector<std::map<std::string, int>> Scopes;
  int NextSlot = 0;
  int LoopDepth = 0;
  std::string Err;
};

} // namespace

TypeCheckResult ccal::typeCheck(ClightModule &M) {
  obs::Span TcSpan("compcertx.typecheck", "compcertx");
  // Reject duplicate definitions up front.
  for (size_t I = 0; I != M.Funcs.size(); ++I)
    for (size_t J = I + 1; J != M.Funcs.size(); ++J)
      if (M.Funcs[I].Name == M.Funcs[J].Name)
        return {"duplicate function '" + M.Funcs[I].Name + "'"};
  for (size_t I = 0; I != M.Globals.size(); ++I)
    for (size_t J = I + 1; J != M.Globals.size(); ++J)
      if (M.Globals[I].Name == M.Globals[J].Name)
        return {"duplicate global '" + M.Globals[I].Name + "'"};

  Checker C(M);
  return {C.run()};
}

void ccal::typeCheckOrDie(ClightModule &M) {
  TypeCheckResult R = typeCheck(M);
  if (!R.ok())
    reportFatal(
        ("type error in module " + M.Name + ": " + R.Error).c_str(),
        __FILE__, __LINE__);
}
