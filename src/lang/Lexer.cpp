//===- lang/Lexer.cpp - ClightX lexer --------------------------------------===//

#include "lang/Lexer.h"

#include "support/Text.h"

#include <cctype>
#include <map>

using namespace ccal;

static const std::map<std::string, TokenKind> &keywordTable() {
  static const std::map<std::string, TokenKind> Table = {
      {"int", TokenKind::KwInt},           {"uint", TokenKind::KwUint},
      {"void", TokenKind::KwVoid},         {"extern", TokenKind::KwExtern},
      {"volatile", TokenKind::KwVolatile}, {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},         {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},           {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},       {"continue", TokenKind::KwContinue},
  };
  return Table;
}

LexResult ccal::lex(const std::string &Source) {
  LexResult Out;
  size_t I = 0, N = Source.size();
  int Line = 1;

  auto Error = [&](const std::string &Msg) {
    Out.Error = strFormat("line %d: %s", Line, Msg.c_str());
    return Out;
  };
  auto Push = [&](TokenKind K, std::string Text = "", std::int64_t V = 0) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.IntVal = V;
    T.Line = Line;
    Out.Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++I;
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/')) {
        if (Source[I] == '\n')
          ++Line;
        ++I;
      }
      if (I + 1 >= N)
        return Error("unterminated block comment");
      I += 2;
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t B = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      std::string Word = Source.substr(B, I - B);
      auto It = keywordTable().find(Word);
      if (It != keywordTable().end())
        Push(It->second);
      else
        Push(TokenKind::Ident, Word);
      continue;
    }
    // Integer literals (decimal or 0x hex); 'u'/'U' suffix accepted.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t B = I;
      int Base = 10;
      if (C == '0' && I + 1 < N && (Source[I + 1] == 'x' || Source[I + 1] == 'X')) {
        Base = 16;
        I += 2;
        B = I;
        if (I >= N || !std::isxdigit(static_cast<unsigned char>(Source[I])))
          return Error("malformed hex literal");
      }
      while (I < N &&
             (Base == 16
                  ? std::isxdigit(static_cast<unsigned char>(Source[I])) != 0
                  : std::isdigit(static_cast<unsigned char>(Source[I])) != 0))
        ++I;
      std::int64_t V = 0;
      for (size_t K = B; K != I; ++K) {
        char D = Source[K];
        int Digit = std::isdigit(static_cast<unsigned char>(D))
                        ? D - '0'
                        : std::tolower(static_cast<unsigned char>(D)) - 'a' + 10;
        V = V * Base + Digit;
      }
      if (I < N && (Source[I] == 'u' || Source[I] == 'U'))
        ++I;
      Push(TokenKind::IntLit, "", V);
      continue;
    }
    // Punctuation.
    auto Two = [&](char A, char B, TokenKind K) {
      if (C == A && I + 1 < N && Source[I + 1] == B) {
        Push(K);
        I += 2;
        return true;
      }
      return false;
    };
    if (Two('=', '=', TokenKind::EqEq) || Two('!', '=', TokenKind::NotEq) ||
        Two('<', '=', TokenKind::LessEq) ||
        Two('>', '=', TokenKind::GreaterEq) ||
        Two('&', '&', TokenKind::AmpAmp) || Two('|', '|', TokenKind::PipePipe))
      continue;
    TokenKind K;
    switch (C) {
    case '(':
      K = TokenKind::LParen;
      break;
    case ')':
      K = TokenKind::RParen;
      break;
    case '{':
      K = TokenKind::LBrace;
      break;
    case '}':
      K = TokenKind::RBrace;
      break;
    case '[':
      K = TokenKind::LBracket;
      break;
    case ']':
      K = TokenKind::RBracket;
      break;
    case ',':
      K = TokenKind::Comma;
      break;
    case ';':
      K = TokenKind::Semi;
      break;
    case '=':
      K = TokenKind::Assign;
      break;
    case '+':
      K = TokenKind::Plus;
      break;
    case '-':
      K = TokenKind::Minus;
      break;
    case '*':
      K = TokenKind::Star;
      break;
    case '/':
      K = TokenKind::Slash;
      break;
    case '%':
      K = TokenKind::Percent;
      break;
    case '<':
      K = TokenKind::Less;
      break;
    case '>':
      K = TokenKind::Greater;
      break;
    case '!':
      K = TokenKind::Bang;
      break;
    default:
      return Error(strFormat("unexpected character '%c'", C));
    }
    Push(K);
    ++I;
  }
  Push(TokenKind::Eof);
  return Out;
}
