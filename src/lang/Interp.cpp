//===- lang/Interp.cpp - ClightX reference interpreter ----------------------===//

#include "lang/Interp.h"

#include "support/Check.h"
#include "support/Text.h"

using namespace ccal;

namespace {
constexpr unsigned MaxCallDepth = 256;
} // namespace

struct Interp::ExecState {
  const FuncDecl *F = nullptr;
  std::vector<std::int64_t> Slots;
  std::int64_t RetVal = 0;
};

Interp::Interp(const ClightModule &M, PrimHandler Prims, InterpOptions Opts)
    : M(M), Prims(std::move(Prims)), Opts(Opts) {
  int Addr = 0;
  for (const GlobalDecl &G : M.Globals) {
    GlobalLayout.emplace(G.Name, std::make_pair(Addr, G.Size));
    for (std::int64_t V : G.Init)
      Globals.push_back(V);
    Addr += G.Size;
  }
}

int Interp::globalAddr(const std::string &Name) const {
  auto It = GlobalLayout.find(Name);
  CCAL_CHECK(It != GlobalLayout.end(), "unknown global");
  return It->second.first;
}

void Interp::fail(int Line, const std::string &Msg) {
  if (Err.empty())
    Err = strFormat("line %d: %s", Line, Msg.c_str());
}

std::optional<std::int64_t>
Interp::call(const std::string &Fn, std::vector<std::int64_t> Args) {
  Err.clear();
  Steps = 0;
  const FuncDecl *F = M.findFunc(Fn);
  if (!F || F->IsExtern) {
    Err = "no defined function '" + Fn + "'";
    return std::nullopt;
  }
  return callFunction(*F, std::move(Args));
}

std::optional<std::int64_t>
Interp::callFunction(const FuncDecl &F, std::vector<std::int64_t> Args) {
  if (++CallDepth > MaxCallDepth) {
    --CallDepth;
    fail(F.Line, "call depth exceeded");
    return std::nullopt;
  }
  ExecState ES;
  ES.F = &F;
  ES.Slots.assign(static_cast<size_t>(F.NumSlots), 0);
  CCAL_CHECK(Args.size() == F.Params.size(), "arity checked before call");
  for (size_t I = 0; I != Args.size(); ++I)
    ES.Slots[I] = Args[I];
  Flow FlowOut = execStmt(*F.Body, ES);
  --CallDepth;
  if (FlowOut == Flow::Error)
    return std::nullopt;
  // Falling off the end returns 0 (void functions always do).
  return FlowOut == Flow::Returned ? ES.RetVal : 0;
}

Interp::Flow Interp::execStmt(const Stmt &S, ExecState &ES) {
  if (++Steps > Opts.MaxSteps) {
    fail(S.Line, "step limit exceeded (possible divergence)");
    return Flow::Error;
  }
  switch (S.K) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : S.Body) {
      Flow F = execStmt(*Child, ES);
      if (F != Flow::Normal)
        return F;
    }
    return Flow::Normal;
  case Stmt::Kind::If: {
    std::optional<std::int64_t> C = evalExpr(*S.Cond, ES);
    if (!C)
      return Flow::Error;
    if (*C != 0)
      return execStmt(*S.Then, ES);
    if (S.Else)
      return execStmt(*S.Else, ES);
    return Flow::Normal;
  }
  case Stmt::Kind::While:
    while (true) {
      if (++Steps > Opts.MaxSteps) {
        fail(S.Line, "step limit exceeded (possible divergence)");
        return Flow::Error;
      }
      std::optional<std::int64_t> C = evalExpr(*S.Cond, ES);
      if (!C)
        return Flow::Error;
      if (*C == 0)
        return Flow::Normal;
      Flow F = execStmt(*S.Then, ES);
      if (F == Flow::Broke)
        return Flow::Normal;
      if (F == Flow::Returned || F == Flow::Error)
        return F;
      // Normal and Continued both re-test the condition.
    }
  case Stmt::Kind::Return:
    if (S.A) {
      std::optional<std::int64_t> V = evalExpr(*S.A, ES);
      if (!V)
        return Flow::Error;
      ES.RetVal = *V;
    } else {
      ES.RetVal = 0;
    }
    return Flow::Returned;
  case Stmt::Kind::LocalDecl: {
    std::int64_t V = 0;
    if (S.A) {
      std::optional<std::int64_t> E = evalExpr(*S.A, ES);
      if (!E)
        return Flow::Error;
      V = *E;
    }
    CCAL_CHECK(S.LocalSlot >= 0 &&
                   static_cast<size_t>(S.LocalSlot) < ES.Slots.size(),
               "local slot out of range");
    ES.Slots[static_cast<size_t>(S.LocalSlot)] = V;
    return Flow::Normal;
  }
  case Stmt::Kind::Assign: {
    std::optional<std::int64_t> V = evalExpr(*S.A, ES);
    if (!V)
      return Flow::Error;
    if (S.LocalSlot >= 0) {
      ES.Slots[static_cast<size_t>(S.LocalSlot)] = *V;
      return Flow::Normal;
    }
    auto It = GlobalLayout.find(S.Name);
    CCAL_CHECK(It != GlobalLayout.end(), "resolved global must exist");
    Globals[static_cast<size_t>(It->second.first)] = *V;
    return Flow::Normal;
  }
  case Stmt::Kind::IndexAssign: {
    std::optional<std::int64_t> Idx = evalExpr(*S.B, ES);
    if (!Idx)
      return Flow::Error;
    std::optional<std::int64_t> V = evalExpr(*S.A, ES);
    if (!V)
      return Flow::Error;
    auto It = GlobalLayout.find(S.Name);
    CCAL_CHECK(It != GlobalLayout.end(), "resolved global must exist");
    auto [Base, Size] = It->second;
    if (*Idx < 0 || *Idx >= Size) {
      fail(S.Line, strFormat("index %lld out of bounds for '%s'[%d]",
                             static_cast<long long>(*Idx), S.Name.c_str(),
                             Size));
      return Flow::Error;
    }
    Globals[static_cast<size_t>(Base + *Idx)] = *V;
    return Flow::Normal;
  }
  case Stmt::Kind::ExprStmt:
    return evalExpr(*S.A, ES) ? Flow::Normal : Flow::Error;
  case Stmt::Kind::Break:
    return Flow::Broke;
  case Stmt::Kind::Continue:
    return Flow::Continued;
  }
  CCAL_UNREACHABLE("unknown statement kind");
}

std::optional<std::int64_t> Interp::evalExpr(const Expr &E, ExecState &ES) {
  if (++Steps > Opts.MaxSteps) {
    fail(E.Line, "step limit exceeded (possible divergence)");
    return std::nullopt;
  }
  switch (E.K) {
  case Expr::Kind::IntLit:
    return E.IntVal;
  case Expr::Kind::Var:
    if (E.LocalSlot >= 0)
      return ES.Slots[static_cast<size_t>(E.LocalSlot)];
    return Globals[static_cast<size_t>(globalAddr(E.Name))];
  case Expr::Kind::Index: {
    std::optional<std::int64_t> Idx = evalExpr(*E.Args[0], ES);
    if (!Idx)
      return std::nullopt;
    auto It = GlobalLayout.find(E.Name);
    CCAL_CHECK(It != GlobalLayout.end(), "resolved global must exist");
    auto [Base, Size] = It->second;
    if (*Idx < 0 || *Idx >= Size) {
      fail(E.Line, strFormat("index %lld out of bounds for '%s'[%d]",
                             static_cast<long long>(*Idx), E.Name.c_str(),
                             Size));
      return std::nullopt;
    }
    return Globals[static_cast<size_t>(Base + *Idx)];
  }
  case Expr::Kind::Call: {
    std::vector<std::int64_t> Args;
    Args.reserve(E.Args.size());
    for (const ExprPtr &A : E.Args) {
      std::optional<std::int64_t> V = evalExpr(*A, ES);
      if (!V)
        return std::nullopt;
      Args.push_back(*V);
    }
    if (E.CalleeExtern) {
      std::optional<std::int64_t> Ret = Prims(E.Name, Args);
      if (!Ret) {
        fail(E.Line, "primitive '" + E.Name + "' got stuck");
        return std::nullopt;
      }
      Trace.push_back({E.Name, Args, *Ret});
      return *Ret;
    }
    const FuncDecl *F = M.findFunc(E.Name);
    CCAL_CHECK(F && !F->IsExtern, "resolved callee must be defined");
    return callFunction(*F, std::move(Args));
  }
  case Expr::Kind::Unary: {
    if (E.Op == "!") {
      std::optional<std::int64_t> V = evalExpr(*E.Args[0], ES);
      if (!V)
        return std::nullopt;
      return *V == 0 ? 1 : 0;
    }
    CCAL_CHECK(E.Op == "-", "unknown unary operator");
    std::optional<std::int64_t> V = evalExpr(*E.Args[0], ES);
    if (!V)
      return std::nullopt;
    return -*V;
  }
  case Expr::Kind::Binary: {
    // Short-circuit forms first.
    if (E.Op == "&&") {
      std::optional<std::int64_t> L = evalExpr(*E.Args[0], ES);
      if (!L)
        return std::nullopt;
      if (*L == 0)
        return 0;
      std::optional<std::int64_t> R = evalExpr(*E.Args[1], ES);
      if (!R)
        return std::nullopt;
      return *R != 0 ? 1 : 0;
    }
    if (E.Op == "||") {
      std::optional<std::int64_t> L = evalExpr(*E.Args[0], ES);
      if (!L)
        return std::nullopt;
      if (*L != 0)
        return 1;
      std::optional<std::int64_t> R = evalExpr(*E.Args[1], ES);
      if (!R)
        return std::nullopt;
      return *R != 0 ? 1 : 0;
    }
    std::optional<std::int64_t> L = evalExpr(*E.Args[0], ES);
    if (!L)
      return std::nullopt;
    std::optional<std::int64_t> R = evalExpr(*E.Args[1], ES);
    if (!R)
      return std::nullopt;
    std::int64_t A = *L, B = *R;
    if (E.Op == "+")
      return A + B;
    if (E.Op == "-")
      return A - B;
    if (E.Op == "*")
      return A * B;
    if (E.Op == "/" || E.Op == "%") {
      if (B == 0) {
        fail(E.Line, "division by zero");
        return std::nullopt;
      }
      return E.Op == "/" ? A / B : A % B;
    }
    if (E.Op == "==")
      return A == B ? 1 : 0;
    if (E.Op == "!=")
      return A != B ? 1 : 0;
    if (E.Op == "<")
      return A < B ? 1 : 0;
    if (E.Op == "<=")
      return A <= B ? 1 : 0;
    if (E.Op == ">")
      return A > B ? 1 : 0;
    if (E.Op == ">=")
      return A >= B ? 1 : 0;
    CCAL_UNREACHABLE("unknown binary operator");
  }
  }
  CCAL_UNREACHABLE("unknown expression kind");
}
