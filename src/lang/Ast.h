//===- lang/Ast.h - ClightX abstract syntax --------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of ClightX modules.  A module is the unit of the layer
/// calculus' `(+)` and of separate compilation: it declares the primitives
/// of its underlay interface as `extern` functions, defines globals in
/// CPU-local memory, and defines the functions it contributes.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_LANG_AST_H
#define CCAL_LANG_AST_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ccal {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node (tagged union style; fields used depend on K).
struct Expr {
  enum class Kind {
    IntLit, ///< IntVal
    Var,    ///< Name (local or global scalar)
    Index,  ///< Name[Args[0]] (global array)
    Call,   ///< Name(Args...) — user function or extern primitive
    Unary,  ///< Op Args[0] where Op is "-" or "!"
    Binary, ///< Args[0] Op Args[1]
  };

  Kind K = Kind::IntLit;
  std::int64_t IntVal = 0;
  std::string Name;
  std::string Op;
  std::vector<ExprPtr> Args;
  int Line = 0;

  // Resolution results (filled by the type checker).
  int LocalSlot = -1;      ///< Var: local/param slot, -1 when global
  bool CalleeExtern = false; ///< Call: resolves to an extern primitive

  static ExprPtr intLit(std::int64_t V, int Line);
  static ExprPtr var(std::string Name, int Line);
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node.
struct Stmt {
  enum class Kind {
    Block,       ///< Body
    If,          ///< Cond, Then, Else?
    While,       ///< Cond, Then (the body)
    Return,      ///< A? (void return when null)
    LocalDecl,   ///< Name, A? (initializer)
    Assign,      ///< Name = A
    IndexAssign, ///< Name[B] = A
    ExprStmt,    ///< A
    Break,
    Continue,
  };

  Kind K = Kind::Block;
  std::vector<StmtPtr> Body;
  ExprPtr Cond;
  ExprPtr A;
  ExprPtr B;
  StmtPtr Then;
  StmtPtr Else;
  std::string Name;
  int Line = 0;

  // Resolution results.
  int LocalSlot = -1; ///< LocalDecl/Assign: slot; -1 = global for Assign
};

/// A function definition or extern declaration.
struct FuncDecl {
  std::string Name;
  bool IsExtern = false;
  bool ReturnsVoid = false;
  std::vector<std::string> Params;
  StmtPtr Body; ///< null for extern declarations
  int Line = 0;

  // Resolution results.
  int NumSlots = 0; ///< params + locals after slot assignment
};

/// A global scalar or array in CPU-local memory.
struct GlobalDecl {
  std::string Name;
  int Size = 1; ///< 1 for scalars
  std::vector<std::int64_t> Init;
  int Line = 0;
};

/// One ClightX module (translation unit).
struct ClightModule {
  std::string Name;
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Funcs;

  const FuncDecl *findFunc(const std::string &Name) const;
  const GlobalDecl *findGlobal(const std::string &Name) const;

  /// Non-extern function names, in declaration order.
  std::vector<std::string> definedFuncs() const;
};

/// Deep copies (modules own their ASTs via unique_ptr).
ExprPtr cloneExpr(const Expr &E);
StmtPtr cloneStmt(const Stmt &S);
FuncDecl cloneFunc(const FuncDecl &F);
ClightModule cloneModule(const ClightModule &M);

/// Links modules textually: the paper's `M1 (+) M2` at the source level.
/// Duplicate global or function definitions abort; extern declarations
/// satisfied by a definition in another module are dropped.
ClightModule linkModules(std::string Name,
                         const std::vector<const ClightModule *> &Mods);

} // namespace ccal

#endif // CCAL_LANG_AST_H
