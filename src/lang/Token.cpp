//===- lang/Token.cpp - ClightX tokens -------------------------------------===//

#include "lang/Token.h"

const char *ccal::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::IntLit:
    return "integer literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwUint:
    return "'uint'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwExtern:
    return "'extern'";
  case TokenKind::KwVolatile:
    return "'volatile'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Eof:
    return "end of input";
  }
  return "unknown token";
}
