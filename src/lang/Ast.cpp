//===- lang/Ast.cpp - ClightX abstract syntax -------------------------------===//

#include "lang/Ast.h"

#include "support/Check.h"

using namespace ccal;

ExprPtr Expr::intLit(std::int64_t V, int Line) {
  auto E = std::make_unique<Expr>();
  E->K = Kind::IntLit;
  E->IntVal = V;
  E->Line = Line;
  return E;
}

ExprPtr Expr::var(std::string Name, int Line) {
  auto E = std::make_unique<Expr>();
  E->K = Kind::Var;
  E->Name = std::move(Name);
  E->Line = Line;
  return E;
}

const FuncDecl *ClightModule::findFunc(const std::string &FName) const {
  for (const FuncDecl &F : Funcs)
    if (F.Name == FName)
      return &F;
  return nullptr;
}

const GlobalDecl *ClightModule::findGlobal(const std::string &GName) const {
  for (const GlobalDecl &G : Globals)
    if (G.Name == GName)
      return &G;
  return nullptr;
}

std::vector<std::string> ClightModule::definedFuncs() const {
  std::vector<std::string> Out;
  for (const FuncDecl &F : Funcs)
    if (!F.IsExtern)
      Out.push_back(F.Name);
  return Out;
}

ExprPtr ccal::cloneExpr(const Expr &E) {
  auto C = std::make_unique<Expr>();
  C->K = E.K;
  C->IntVal = E.IntVal;
  C->Name = E.Name;
  C->Op = E.Op;
  C->Line = E.Line;
  C->LocalSlot = E.LocalSlot;
  C->CalleeExtern = E.CalleeExtern;
  for (const ExprPtr &A : E.Args)
    C->Args.push_back(cloneExpr(*A));
  return C;
}

StmtPtr ccal::cloneStmt(const Stmt &S) {
  auto C = std::make_unique<Stmt>();
  C->K = S.K;
  C->Name = S.Name;
  C->Line = S.Line;
  C->LocalSlot = S.LocalSlot;
  for (const StmtPtr &B : S.Body)
    C->Body.push_back(cloneStmt(*B));
  if (S.Cond)
    C->Cond = cloneExpr(*S.Cond);
  if (S.A)
    C->A = cloneExpr(*S.A);
  if (S.B)
    C->B = cloneExpr(*S.B);
  if (S.Then)
    C->Then = cloneStmt(*S.Then);
  if (S.Else)
    C->Else = cloneStmt(*S.Else);
  return C;
}

FuncDecl ccal::cloneFunc(const FuncDecl &F) {
  FuncDecl C;
  C.Name = F.Name;
  C.IsExtern = F.IsExtern;
  C.ReturnsVoid = F.ReturnsVoid;
  C.Params = F.Params;
  C.Line = F.Line;
  C.NumSlots = F.NumSlots;
  if (F.Body)
    C.Body = cloneStmt(*F.Body);
  return C;
}

ClightModule ccal::cloneModule(const ClightModule &M) {
  ClightModule C;
  C.Name = M.Name;
  C.Globals = M.Globals;
  for (const FuncDecl &F : M.Funcs)
    C.Funcs.push_back(cloneFunc(F));
  return C;
}

ClightModule
ccal::linkModules(std::string Name,
                  const std::vector<const ClightModule *> &Mods) {
  ClightModule Out;
  Out.Name = std::move(Name);
  // Collect definitions first so extern declarations can be dropped when a
  // sibling module defines the symbol (the paper's layer linking, §5.5).
  for (const ClightModule *M : Mods) {
    for (const GlobalDecl &G : M->Globals) {
      CCAL_CHECK(Out.findGlobal(G.Name) == nullptr,
                 "link: duplicate global definition");
      Out.Globals.push_back(G);
    }
    for (const FuncDecl &F : M->Funcs) {
      if (F.IsExtern)
        continue;
      const FuncDecl *Prev = Out.findFunc(F.Name);
      CCAL_CHECK(Prev == nullptr, "link: duplicate function definition");
      Out.Funcs.push_back(cloneFunc(F));
    }
  }
  // Keep extern declarations only for still-unresolved names.
  for (const ClightModule *M : Mods)
    for (const FuncDecl &F : M->Funcs)
      if (F.IsExtern && !Out.findFunc(F.Name))
        Out.Funcs.push_back(cloneFunc(F));
  return Out;
}
