//===- lang/Token.h - ClightX tokens ---------------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of ClightX, the C subset in which layer implementations are
/// written (the paper's Fig. 3/10/11 code parses unchanged modulo the `|>`
/// query-point marks, which are semantic, not syntactic).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_LANG_TOKEN_H
#define CCAL_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace ccal {

enum class TokenKind {
  // Literals and identifiers.
  Ident,
  IntLit,
  // Keywords.
  KwInt,
  KwUint,
  KwVoid,
  KwExtern,
  KwVolatile,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang,
  Eof,
};

/// Human-readable spelling for diagnostics.
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;        ///< identifier spelling
  std::int64_t IntVal = 0; ///< integer literal value
  int Line = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace ccal

#endif // CCAL_LANG_TOKEN_H
