//===- lang/Interp.h - ClightX reference interpreter -----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential reference interpreter for ClightX: the source-level
/// semantics against which the CompCertX-analogue compiler is validated
/// (translation validation replaces the paper's once-and-for-all Coq
/// correctness proof; see compcertx/Validate.h).
///
/// Primitive calls (extern functions) are dispatched to a PrimHandler and
/// recorded in an observable trace; trace equality is the refinement
/// criterion between source and compiled code.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_LANG_INTERP_H
#define CCAL_LANG_INTERP_H

#include "lang/Ast.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ccal {

/// Host hook implementing the underlay primitives during sequential
/// interpretation; std::nullopt makes the interpreter stuck.
using PrimHandler = std::function<std::optional<std::int64_t>(
    const std::string &Name, const std::vector<std::int64_t> &Args)>;

/// One observable primitive call.
struct PrimTraceEntry {
  std::string Name;
  std::vector<std::int64_t> Args;
  std::int64_t Ret = 0;

  bool operator==(const PrimTraceEntry &O) const {
    return Name == O.Name && Args == O.Args && Ret == O.Ret;
  }
};

/// Tuning knobs for interpretation.
struct InterpOptions {
  std::uint64_t MaxSteps = 1u << 22; ///< statement-evaluation budget
};

/// Big-step interpreter over a typechecked module.  Globals persist across
/// call()s, like a module instance.
class Interp {
public:
  /// \p M must outlive the interpreter and be typechecked.
  Interp(const ClightModule &M, PrimHandler Prims,
         InterpOptions Opts = InterpOptions());

  /// Runs function \p Fn on \p Args; std::nullopt on a runtime error or a
  /// stuck primitive (see error()); void functions yield 0.
  std::optional<std::int64_t> call(const std::string &Fn,
                                   std::vector<std::int64_t> Args);

  const std::string &error() const { return Err; }
  const std::vector<PrimTraceEntry> &trace() const { return Trace; }
  void clearTrace() { Trace.clear(); }

  /// Address of global \p Name in the flat global store; aborts if absent.
  int globalAddr(const std::string &Name) const;

  std::vector<std::int64_t> &globals() { return Globals; }
  const std::vector<std::int64_t> &globals() const { return Globals; }

private:
  struct ExecState;
  enum class Flow { Normal, Returned, Broke, Continued, Error };

  Flow execStmt(const Stmt &S, ExecState &ES);
  std::optional<std::int64_t> evalExpr(const Expr &E, ExecState &ES);
  std::optional<std::int64_t> callFunction(const FuncDecl &F,
                                           std::vector<std::int64_t> Args);

  void fail(int Line, const std::string &Msg);

  const ClightModule &M;
  PrimHandler Prims;
  InterpOptions Opts;
  std::vector<std::int64_t> Globals;
  std::map<std::string, std::pair<int, int>> GlobalLayout; ///< name->(addr,sz)
  std::vector<PrimTraceEntry> Trace;
  std::string Err;
  std::uint64_t Steps = 0;
  unsigned CallDepth = 0;
};

} // namespace ccal

#endif // CCAL_LANG_INTERP_H
