//===- core/Log.h - The global event log -----------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global log `l` (§2, §3.1): the list of observable events recording
/// all shared operations, interleaved in chronological order.  All shared
/// abstract state is reconstructed from the log by replay functions
/// (core/Replay.h), so the log *is* the shared state of a layer machine.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_LOG_H
#define CCAL_CORE_LOG_H

#include "core/Event.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {

/// The global event log.  The paper "cons"es events at the front
/// (`l • e` in §2); we append at the back, so index 0 is the oldest event.
using Log = std::vector<Event>;

/// Appends \p E to \p L (the paper's `l • e`).
inline void logAppend(Log &L, Event E) { L.push_back(std::move(E)); }

/// Appends all of \p Events to \p L in order.
void logAppendAll(Log &L, const std::vector<Event> &Events);

/// Renders the log as "e0 • e1 • ...".
std::string logToString(const Log &L);

/// Number of events with the given participant and kind.
std::uint64_t logCount(const Log &L, ThreadId Tid, const std::string &Kind);

/// Number of events with the given kind from any participant.
std::uint64_t logCountKind(const Log &L, const std::string &Kind);

/// All events of one participant, in order.
Log logFilterTid(const Log &L, ThreadId Tid);

/// All events with one kind, in order.
Log logFilterKind(const Log &L, const std::string &Kind);

/// The participant holding control after replaying the scheduling events of
/// \p L, or \p Default if the log contains none.
ThreadId logControl(const Log &L, ThreadId Default);

/// Finalizer of splitmix64: a full-avalanche 64-bit mixer.  Used to build
/// composite hashes whose fields cannot cancel each other out.
inline std::uint64_t hashMix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Folds \p V into the running hash \p Seed, order-sensitively.  Each value
/// is avalanched before combining, so adjacent fields act as separated
/// words rather than a raw multiply-add chain (which lets distinct field
/// sequences collide, e.g. `[1], [2]` vs `[1, 2]` under plain FNV).
/// Callers hashing variable-length sequences must also fold the length.
inline std::uint64_t hashCombine(std::uint64_t Seed, std::uint64_t V) {
  return (Seed ^ hashMix64(V)) * 1099511628211ULL;
}

/// Combined hash of all events plus the log length, for dedup tables.
std::uint64_t hashLog(const Log &L);

} // namespace ccal

#endif // CCAL_CORE_LOG_H
