//===- core/Log.h - The global event log -----------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global log `l` (§2, §3.1): the list of observable events recording
/// all shared operations, interleaved in chronological order.  All shared
/// abstract state is reconstructed from the log by replay functions
/// (core/Replay.h), so the log *is* the shared state of a layer machine.
///
/// Representation: a copy-on-write, append-only chunked sequence.  Sealed
/// chunks of ChunkCap events are immutable and shared between snapshots
/// (copying a log bumps a few refcounts and copies at most ChunkCap-1
/// tail events), which turns the Explorer's per-frame machine copies from
/// O(depth) event clones into effectively O(1).  Invariants:
///
///   * every sealed chunk holds exactly ChunkCap events and is NEVER
///     mutated after sealing (shared_ptr<const Chunk>);
///   * the tail holds size() % ChunkCap events and is exclusively owned
///     by this Log value (copied on copy, so appends never race);
///   * chunk boundaries are a pure function of size(), so two logs with
///     equal contents always have identical chunk structure and
///     operator== can short-circuit on shared chunk pointers.
///
/// The interface is the subset of std::vector<Event> the repository uses;
/// indexing is O(1) (shift/mask — ChunkCap is a power of two).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_LOG_H
#define CCAL_CORE_LOG_H

#include "core/Event.h"
#include "support/Hash.h"

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

namespace ccal {

/// The global event log.  The paper "cons"es events at the front
/// (`l • e` in §2); we append at the back, so index 0 is the oldest event.
class Log {
  using Chunk = std::vector<Event>;
  using ChunkPtr = std::shared_ptr<const Chunk>;

public:
  static constexpr size_t ChunkCap = 16; // power of two
  static constexpr size_t ChunkShift = 4;
  static constexpr size_t ChunkMask = ChunkCap - 1;

  using value_type = Event;

  Log() = default;
  Log(std::initializer_list<Event> Es) {
    for (const Event &E : Es)
      push_back(E);
  }
  template <typename It> Log(It First, It Last) {
    for (; First != Last; ++First)
      push_back(*First);
  }
  /// Implicit view of a plain event vector as a log, so vector-producing
  /// code (strategy moves, tests) compares against and prints like a Log.
  /// O(n) — the O(1) persistent sharing applies to Log-to-Log copies.
  Log(const std::vector<Event> &Events) : Log(Events.begin(), Events.end()) {}

  size_t size() const { return (Chunks.size() << ChunkShift) + Tail.size(); }
  bool empty() const { return Chunks.empty() && Tail.empty(); }

  const Event &operator[](size_t I) const {
    const size_t C = I >> ChunkShift;
    return C < Chunks.size() ? (*Chunks[C])[I & ChunkMask]
                             : Tail[I & ChunkMask];
  }

  const Event &back() const {
    return Tail.empty() ? Chunks.back()->back() : Tail.back();
  }

  void push_back(Event E) {
    RunHash = hashCombine(RunHash, hashEvent(E));
    // Copied logs arrive with a capacity-exact tail; grow it to a full
    // chunk once instead of letting the vector realloc its way up.
    if (Tail.capacity() < ChunkCap)
      Tail.reserve(ChunkCap);
    Tail.push_back(std::move(E));
    if (Tail.size() == ChunkCap) {
      Chunks.push_back(std::make_shared<const Chunk>(std::move(Tail)));
      Tail.clear();
    }
  }

  void pop_back() {
    if (Tail.empty()) {
      // Unseal the last chunk into the tail, minus its last event; the
      // sealed copy itself stays untouched for any sharers.
      Tail.assign(Chunks.back()->begin(), Chunks.back()->end() - 1);
      Chunks.pop_back();
    } else {
      Tail.pop_back();
    }
    // The running hash is a one-way fold; removing the last contribution
    // means refolding.  Only the backtracking linearization search pops,
    // and its logs are short.
    RunHash = HashSeed;
    for (size_t I = 0, E = size(); I != E; ++I)
      RunHash = hashCombine(RunHash, hashEvent((*this)[I]));
  }

  void clear() {
    Chunks.clear();
    Tail.clear();
    RunHash = HashSeed;
  }

  /// Running fold of hashEvent over the contents, maintained on append so
  /// hashLog is O(1) instead of a full walk (the Explorer hashes the log
  /// in every outcome-dedup probe and snapshot hash).
  std::uint64_t runHash() const { return RunHash; }

  /// Compatibility no-op: sealed chunks make bulk pre-allocation moot.
  void reserve(size_t) {}

  /// Bytes physically copied when this log is copied: the value itself,
  /// one shared_ptr per sealed chunk (the chunk contents are shared, not
  /// copied), and the deep-copied tail.  The pre-refactor representation
  /// (std::vector<Event>) copied every event; benches record both.
  size_t snapshotCopyBytes() const {
    return sizeof(Log) + Chunks.size() * sizeof(ChunkPtr) +
           Tail.size() * sizeof(Event);
  }

  bool operator==(const Log &O) const {
    // Unequal running hashes prove inequality without touching contents;
    // equal ones still require the structural check below.
    if (RunHash != O.RunHash)
      return false;
    if (Chunks.size() != O.Chunks.size() || Tail.size() != O.Tail.size())
      return false;
    for (size_t I = 0, E = Chunks.size(); I != E; ++I) {
      if (Chunks[I] == O.Chunks[I])
        continue; // shared prefix: structurally equal by construction
      if (*Chunks[I] != *O.Chunks[I])
        return false;
    }
    return Tail == O.Tail;
  }
  bool operator!=(const Log &O) const { return !(*this == O); }

  /// True when this log's contents equal O's first size() events.  Because
  /// chunk boundaries are a pure function of size(), a prefix's sealed
  /// chunks line up with O's, so the check is mostly shared-pointer
  /// compares plus at most one tail-against-chunk walk — cheap enough for
  /// the replay memo to resume a fold from a memoized prefix state.
  bool isPrefixOf(const Log &O) const {
    if (size() > O.size())
      return false;
    // size() <= O.size() implies Chunks.size() <= O.Chunks.size().
    for (size_t I = 0, E = Chunks.size(); I != E; ++I) {
      if (Chunks[I] == O.Chunks[I])
        continue;
      if (*Chunks[I] != *O.Chunks[I])
        return false;
    }
    const size_t Base = Chunks.size() << ChunkShift;
    for (size_t I = 0, E = Tail.size(); I != E; ++I)
      if (!(Tail[I] == O[Base + I]))
        return false;
    return true;
  }

  /// Random-access const iterator (indexes through the chunk table).
  class const_iterator {
  public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Event;
    using difference_type = std::ptrdiff_t;
    using pointer = const Event *;
    using reference = const Event &;

    const_iterator() = default;
    const_iterator(const Log *L, size_t I) : L(L), I(I) {}

    reference operator*() const { return (*L)[I]; }
    pointer operator->() const { return &(*L)[I]; }
    reference operator[](difference_type N) const {
      return (*L)[I + static_cast<size_t>(N)];
    }

    const_iterator &operator++() { ++I; return *this; }
    const_iterator operator++(int) { const_iterator T = *this; ++I; return T; }
    const_iterator &operator--() { --I; return *this; }
    const_iterator operator--(int) { const_iterator T = *this; --I; return T; }
    const_iterator &operator+=(difference_type N) {
      I = static_cast<size_t>(static_cast<difference_type>(I) + N);
      return *this;
    }
    const_iterator &operator-=(difference_type N) { return *this += -N; }
    friend const_iterator operator+(const_iterator A, difference_type N) {
      return A += N;
    }
    friend const_iterator operator+(difference_type N, const_iterator A) {
      return A += N;
    }
    friend const_iterator operator-(const_iterator A, difference_type N) {
      return A -= N;
    }
    friend difference_type operator-(const_iterator A, const_iterator B) {
      return static_cast<difference_type>(A.I) -
             static_cast<difference_type>(B.I);
    }
    friend bool operator==(const_iterator A, const_iterator B) {
      return A.I == B.I;
    }
    friend bool operator!=(const_iterator A, const_iterator B) {
      return A.I != B.I;
    }
    friend bool operator<(const_iterator A, const_iterator B) {
      return A.I < B.I;
    }
    friend bool operator>(const_iterator A, const_iterator B) {
      return A.I > B.I;
    }
    friend bool operator<=(const_iterator A, const_iterator B) {
      return A.I <= B.I;
    }
    friend bool operator>=(const_iterator A, const_iterator B) {
      return A.I >= B.I;
    }

  private:
    const Log *L = nullptr;
    size_t I = 0;
  };
  using iterator = const_iterator;

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

private:
  static constexpr std::uint64_t HashSeed = 1469598103934665603ULL;

  std::vector<ChunkPtr> Chunks; ///< sealed, immutable, shared
  Chunk Tail;                   ///< < ChunkCap events, exclusively owned
  std::uint64_t RunHash = HashSeed;
};

/// Appends \p E to \p L (the paper's `l • e`).
inline void logAppend(Log &L, Event E) { L.push_back(std::move(E)); }

/// Appends all of \p Events to \p L in order.
void logAppendAll(Log &L, const std::vector<Event> &Events);

/// Renders the log as "e0 • e1 • ...".
std::string logToString(const Log &L);

/// Number of events with the given participant and kind.  (Callers with a
/// string intern it implicitly; hot replay folds should pre-intern.)
std::uint64_t logCount(const Log &L, ThreadId Tid, KindId Kind);

/// Number of events with the given kind from any participant.
std::uint64_t logCountKind(const Log &L, KindId Kind);

/// All events of one participant, in order.
Log logFilterTid(const Log &L, ThreadId Tid);

/// All events with one kind, in order.
Log logFilterKind(const Log &L, KindId Kind);

/// The participant holding control after replaying the scheduling events of
/// \p L, or \p Default if the log contains none.
ThreadId logControl(const Log &L, ThreadId Default);

/// Combined hash of all events plus the log length, for dedup tables.
/// (The underlying mixers hashMix64/hashCombine live in support/Hash.h.)
std::uint64_t hashLog(const Log &L);

} // namespace ccal

#endif // CCAL_CORE_LOG_H
