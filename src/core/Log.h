//===- core/Log.h - The global event log -----------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global log `l` (§2, §3.1): the list of observable events recording
/// all shared operations, interleaved in chronological order.  All shared
/// abstract state is reconstructed from the log by replay functions
/// (core/Replay.h), so the log *is* the shared state of a layer machine.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_LOG_H
#define CCAL_CORE_LOG_H

#include "core/Event.h"
#include "support/Hash.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {

/// The global event log.  The paper "cons"es events at the front
/// (`l • e` in §2); we append at the back, so index 0 is the oldest event.
using Log = std::vector<Event>;

/// Appends \p E to \p L (the paper's `l • e`).
inline void logAppend(Log &L, Event E) { L.push_back(std::move(E)); }

/// Appends all of \p Events to \p L in order.
void logAppendAll(Log &L, const std::vector<Event> &Events);

/// Renders the log as "e0 • e1 • ...".
std::string logToString(const Log &L);

/// Number of events with the given participant and kind.
std::uint64_t logCount(const Log &L, ThreadId Tid, const std::string &Kind);

/// Number of events with the given kind from any participant.
std::uint64_t logCountKind(const Log &L, const std::string &Kind);

/// All events of one participant, in order.
Log logFilterTid(const Log &L, ThreadId Tid);

/// All events with one kind, in order.
Log logFilterKind(const Log &L, const std::string &Kind);

/// The participant holding control after replaying the scheduling events of
/// \p L, or \p Default if the log contains none.
ThreadId logControl(const Log &L, ThreadId Default);

/// Combined hash of all events plus the log length, for dedup tables.
/// (The underlying mixers hashMix64/hashCombine live in support/Hash.h.)
std::uint64_t hashLog(const Log &L);

} // namespace ccal

#endif // CCAL_CORE_LOG_H
