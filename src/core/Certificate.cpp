//===- core/Certificate.cpp - Refinement certificates ----------------------===//

#include "core/Certificate.h"

#include "support/Text.h"

using namespace ccal;

std::string RefinementCertificate::statement() const {
  return strFormat("%s |-%s %s : %s", Underlay.c_str(), Relation.c_str(),
                   Module.c_str(), Overlay.c_str());
}

static void renderTree(const RefinementCertificate &C, unsigned Depth,
                       std::string &Out) {
  Out += std::string(Depth * 2, ' ');
  Out += strFormat("[%s]%s%s %s  (obligations=%llu, runs=%llu)\n",
                   C.Rule.c_str(), C.Valid ? "" : " INVALID",
                   C.CoverageComplete ? "" : " PARTIAL-COVERAGE",
                   C.statement().c_str(),
                   static_cast<unsigned long long>(C.Obligations),
                   static_cast<unsigned long long>(C.Runs));
  for (const auto &P : C.Premises)
    renderTree(*P, Depth + 1, Out);
}

std::string RefinementCertificate::tree() const {
  std::string Out;
  renderTree(*this, 0, Out);
  return Out;
}

std::uint64_t RefinementCertificate::totalObligations() const {
  std::uint64_t N = Obligations;
  for (const auto &P : Premises)
    N += P->totalObligations();
  return N;
}

std::uint64_t RefinementCertificate::totalRuns() const {
  std::uint64_t N = Runs;
  for (const auto &P : Premises)
    N += P->totalRuns();
  return N;
}

std::uint64_t RefinementCertificate::totalInvariants() const {
  std::uint64_t N = Invariants;
  for (const auto &P : Premises)
    N += P->totalInvariants();
  return N;
}
