//===- core/Log.cpp - The global event log --------------------------------===//

#include "core/Log.h"

#include <array>

using namespace ccal;

void ccal::logAppendAll(Log &L, const std::vector<Event> &Events) {
  for (const Event &E : Events)
    L.push_back(E);
}

std::string ccal::logToString(const Log &L) {
  std::string Out;
  for (size_t I = 0, E = L.size(); I != E; ++I) {
    if (I != 0)
      Out += " \xE2\x80\xA2 "; // " • "
    Out += L[I].toString();
  }
  return Out;
}

std::uint64_t ccal::logCount(const Log &L, ThreadId Tid, KindId Kind) {
  std::uint64_t N = 0;
  for (const Event &E : L)
    if (E.Tid == Tid && E.Kind == Kind)
      ++N;
  return N;
}

std::uint64_t ccal::logCountKind(const Log &L, KindId Kind) {
  // Counter prims (fetch-inc, read-counter) recount their kind on every
  // call while the Explorer extends the log one event at a time; resume
  // from a memoized structural prefix instead of rescanning.  Prefixes
  // are verified with isPrefixOf (shared-chunk pointer compares), so a
  // resumed count equals the full scan exactly.
  struct Memo {
    bool Used = false;
    KindId K;
    Log L;
    std::uint64_t N = 0;
  };
  thread_local std::array<Memo, 8> Memos;
  thread_local unsigned Next = 0;
  const Memo *Prefix = nullptr;
  for (const Memo &M : Memos) {
    if (!M.Used || M.K != Kind || M.L.size() > L.size())
      continue;
    if ((!Prefix || M.L.size() > Prefix->L.size()) && M.L.isPrefixOf(L))
      Prefix = &M;
  }
  std::uint64_t N = Prefix ? Prefix->N : 0;
  for (size_t I = Prefix ? Prefix->L.size() : 0, E = L.size(); I != E; ++I)
    if (L[I].Kind == Kind)
      ++N;
  if (Prefix && Prefix->L.size() == L.size())
    return N; // exact hit: keep the slot instead of churning it
  Memo &M = Memos[Next++ % Memos.size()];
  M.Used = true;
  M.K = Kind;
  M.L = L;
  M.N = N;
  return N;
}

Log ccal::logFilterTid(const Log &L, ThreadId Tid) {
  Log Out;
  for (const Event &E : L)
    if (E.Tid == Tid)
      Out.push_back(E);
  return Out;
}

Log ccal::logFilterKind(const Log &L, KindId Kind) {
  Log Out;
  for (const Event &E : L)
    if (E.Kind == Kind)
      Out.push_back(E);
  return Out;
}

ThreadId ccal::logControl(const Log &L, ThreadId Default) {
  for (size_t I = L.size(); I != 0; --I)
    if (L[I - 1].isSched())
      return L[I - 1].Tid;
  return Default;
}

std::uint64_t ccal::hashLog(const Log &L) {
  // The fold over the events is maintained incrementally by the Log on
  // every append, so hashing is O(1) regardless of length.
  return hashCombine(L.runHash(), L.size());
}
