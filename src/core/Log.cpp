//===- core/Log.cpp - The global event log --------------------------------===//

#include "core/Log.h"

using namespace ccal;

void ccal::logAppendAll(Log &L, const std::vector<Event> &Events) {
  L.insert(L.end(), Events.begin(), Events.end());
}

std::string ccal::logToString(const Log &L) {
  std::string Out;
  for (size_t I = 0, E = L.size(); I != E; ++I) {
    if (I != 0)
      Out += " \xE2\x80\xA2 "; // " • "
    Out += L[I].toString();
  }
  return Out;
}

std::uint64_t ccal::logCount(const Log &L, ThreadId Tid,
                             const std::string &Kind) {
  std::uint64_t N = 0;
  for (const Event &E : L)
    if (E.Tid == Tid && E.Kind == Kind)
      ++N;
  return N;
}

std::uint64_t ccal::logCountKind(const Log &L, const std::string &Kind) {
  std::uint64_t N = 0;
  for (const Event &E : L)
    if (E.Kind == Kind)
      ++N;
  return N;
}

Log ccal::logFilterTid(const Log &L, ThreadId Tid) {
  Log Out;
  for (const Event &E : L)
    if (E.Tid == Tid)
      Out.push_back(E);
  return Out;
}

Log ccal::logFilterKind(const Log &L, const std::string &Kind) {
  Log Out;
  for (const Event &E : L)
    if (E.Kind == Kind)
      Out.push_back(E);
  return Out;
}

ThreadId ccal::logControl(const Log &L, ThreadId Default) {
  for (size_t I = L.size(); I != 0; --I)
    if (L[I - 1].isSched())
      return L[I - 1].Tid;
  return Default;
}

std::uint64_t ccal::hashLog(const Log &L) {
  std::uint64_t H = 1469598103934665603ULL;
  for (const Event &E : L)
    H = hashCombine(H, hashEvent(E));
  return hashCombine(H, L.size());
}
