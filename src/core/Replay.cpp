//===- core/Replay.cpp - Replay functions ---------------------------------===//

#include "core/Replay.h"

// Replayer is a header-only template; this file anchors the TU.
