//===- core/Simulation.cpp - Strategy simulation (Def 2.1) -----------------===//

#include "core/Simulation.h"

#include "cert/CertStore.h"
#include "support/Check.h"
#include "support/Text.h"

using namespace ccal;

namespace {

const char SimCheckerVersion[] = "sim-v1";

JsonValue simToPayload(const SimReport &R) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["holds"] = jsonBool(R.Holds);
  V.Fields["complete"] = jsonBool(R.Complete);
  V.Fields["runs"] = jsonUInt(R.Runs);
  V.Fields["moves"] = jsonUInt(R.Moves);
  V.Fields["obligations"] = jsonUInt(R.Obligations);
  V.Fields["counterexample"] = jsonStr(R.Counterexample);
  return V;
}

bool simFromPayload(const JsonValue &V, SimReport &R) {
  const JsonValue *Holds = V.field("holds");
  const JsonValue *Complete = V.field("complete");
  const JsonValue *Runs = V.field("runs");
  const JsonValue *Moves = V.field("moves");
  const JsonValue *Ob = V.field("obligations");
  const JsonValue *Cex = V.field("counterexample");
  if (!Holds || !Holds->isBool() || !Complete || !Complete->isBool() ||
      !Runs || !Runs->IsInt || !Moves || !Moves->IsInt || !Ob ||
      !Ob->IsInt || !Cex || !Cex->isString())
    return false;
  R.Holds = Holds->BoolVal;
  R.Complete = Complete->BoolVal;
  R.Runs = static_cast<std::uint64_t>(Runs->IntVal);
  R.Moves = static_cast<std::uint64_t>(Moves->IntVal);
  R.Obligations = static_cast<std::uint64_t>(Ob->IntVal);
  R.Counterexample = Cex->StrVal;
  return true;
}

} // namespace

EventMap EventMap::identity() {
  return EventMap("id", [](const Event &E) { return E; });
}

EventMap EventMap::compose(const EventMap &R, const EventMap &S) {
  auto FR = R.Fn, FS = S.Fn;
  std::string Name =
      R.name() == "id" ? S.name()
                       : (S.name() == "id" ? R.name()
                                           : R.name() + " o " + S.name());
  return EventMap(std::move(Name),
                  [FR, FS](const Event &E) -> std::optional<Event> {
                    std::optional<Event> Mid = FR(E);
                    if (!Mid)
                      return std::nullopt;
                    return FS(*Mid);
                  });
}

Log EventMap::apply(const Log &L) const {
  Log Out;
  for (const Event &E : L)
    if (std::optional<Event> M = map(E))
      Out.push_back(std::move(*M));
  return Out;
}

namespace {

/// DFS worker for the simulation search.
class SimSearch {
public:
  SimSearch(const EventMap &R, const SimOptions &Opts, SimReport &Report)
      : R(R), Opts(Opts), Report(Report) {}

  /// One branch state.  Everything is owned so branches are independent.
  struct Node {
    std::unique_ptr<Strategy> Impl;
    std::unique_ptr<Strategy> Spec;
    std::unique_ptr<EnvModel> Env;
    Log ImplLog;
    Log SpecLog;
    unsigned Moves = 0;
  };

  static Node cloneNode(const Node &N) {
    Node C;
    C.Impl = N.Impl->clone();
    C.Spec = N.Spec->clone();
    C.Env = N.Env->clone();
    C.ImplLog = N.ImplLog;
    C.SpecLog = N.SpecLog;
    C.Moves = N.Moves;
    return C;
  }

  bool explore(Node N) {
    if (Report.Runs >= Opts.MaxRuns) {
      Report.Complete = false;
      fail(N, "run budget exhausted (MaxRuns) before exploration completed");
      return false;
    }

    if (N.Impl->done()) {
      if (!N.Spec->done()) {
        fail(N, "implementation finished but specification has moves left");
        return false;
      }
      ++Report.Runs;
      return true;
    }

    if (N.Moves >= Opts.MaxMoves) {
      fail(N, "move bound exceeded: divergence under a valid environment");
      return false;
    }

    if (N.Impl->critical())
      return implMove(std::move(N));

    // Query point: branch over every environment response (`?E`).
    std::vector<EnvChoice> Choices = N.Env->choices(N.ImplLog);
    if (Choices.empty()) {
      fail(N, "environment exhausted (scripted env too short?)");
      return false;
    }
    for (size_t I = 0, E = Choices.size(); I != E; ++I) {
      Node C = cloneNode(N);
      C.Env->advance(I, C.ImplLog);
      for (const Event &Ev : Choices[I].Events) {
        C.ImplLog.push_back(Ev);
        if (std::optional<Event> M = R.map(Ev))
          C.SpecLog.push_back(std::move(*M));
      }
      bool Ok = Choices[I].ReturnsControl ? implMove(std::move(C))
                                          : explore(std::move(C));
      if (!Ok)
        return false;
    }
    return true;
  }

  bool implMove(Node N) {
    std::optional<StrategyMove> M = N.Impl->onScheduled(N.ImplLog);
    if (!M) {
      fail(N, "implementation strategy got stuck");
      return false;
    }
    ++Report.Moves;
    ++N.Moves;
    logAppendAll(N.ImplLog, M->Events);

    Log Mapped;
    for (const Event &Ev : M->Events)
      if (std::optional<Event> ME = R.map(Ev))
        Mapped.push_back(std::move(*ME));

    if (!Mapped.empty()) {
      if (N.Spec->done()) {
        fail(N, "specification already finished but implementation emitted " +
                    logToString(Mapped));
        return false;
      }
      std::optional<StrategyMove> SM = N.Spec->onScheduled(N.SpecLog);
      if (!SM) {
        fail(N, "specification strategy got stuck on " + logToString(Mapped));
        return false;
      }
      if (SM->Events != Mapped) {
        fail(N, "event mismatch: spec produced " + logToString(SM->Events) +
                    " but R maps implementation move to " +
                    logToString(Mapped));
        return false;
      }
      logAppendAll(N.SpecLog, SM->Events);
      if (M->Return && SM->Return && *M->Return != *SM->Return) {
        fail(N, strFormat("return mismatch: impl %lld vs spec %lld",
                          static_cast<long long>(*M->Return),
                          static_cast<long long>(*SM->Return)));
        return false;
      }
      ++Report.Obligations;
    }
    return explore(std::move(N));
  }

private:
  void fail(const Node &N, const std::string &Why) {
    if (!Report.Counterexample.empty())
      return;
    Report.Counterexample = Why + "\n  impl log: " + logToString(N.ImplLog) +
                            "\n  spec log: " + logToString(N.SpecLog);
  }

  const EventMap &R;
  const SimOptions &Opts;
  SimReport &Report;
};

} // namespace

namespace {

SimReport checkStrategySimulationImpl(const Strategy &Impl,
                                      const Strategy &Spec,
                                      const EventMap &R, const EnvModel &Env,
                                      const SimOptions &Opts) {
  SimReport Report;
  SimSearch Search(R, Opts, Report);
  SimSearch::Node Root;
  Root.Impl = Impl.clone();
  Root.Spec = Spec.clone();
  Root.Env = Env.clone();
  Report.Holds = Search.explore(std::move(Root));
  return Report;
}

} // namespace

SimReport ccal::checkStrategySimulation(const Strategy &Impl,
                                        const Strategy &Spec,
                                        const EventMap &R,
                                        const EnvModel &Env,
                                        const SimOptions &Opts) {
  // Load-or-recheck front-end: cacheable only when the caller named the
  // (opaque) environment model via SimOptions::EnvKey.
  cert::CertStore *Store = cert::store();
  if (!Store || Opts.EnvKey.empty())
    return checkStrategySimulationImpl(Impl, Spec, R, Env, Opts);

  cert::CertKey Key;
  Key.Checker = "sim";
  Key.Version = SimCheckerVersion;
  Key.Desc =
      Impl.describe() + " <= " + Spec.describe() + " via " + R.name();
  Hasher H;
  H.str(Impl.describe())
      .str(Spec.describe())
      .str(R.name())
      .str(Opts.EnvKey)
      .u64(Opts.MaxMoves)
      .u64(Opts.MaxRuns);
  Key.Hash = H.value();

  SimReport Report;
  Store->getOrCheck(
      Key,
      [&](const cert::CertStore::Entry &E) {
        return simFromPayload(E.Payload, Report);
      },
      [&] {
        Report = checkStrategySimulationImpl(Impl, Spec, R, Env, Opts);
        cert::CertStore::Entry Out;
        Out.Cert = makeFunCertificate(Impl.describe(), "(strategy)",
                                      Spec.describe(), R, Report);
        Out.Payload = simToPayload(Report);
        return Out;
      });
  return Report;
}

CertPtr ccal::makeFunCertificate(const std::string &Underlay,
                                 const std::string &Module,
                                 const std::string &Overlay,
                                 const EventMap &R, const SimReport &Report) {
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "Fun";
  C->Underlay = Underlay;
  C->Module = Module;
  C->Overlay = Overlay;
  C->Relation = R.name();
  C->CoverageComplete = Report.Complete;
  C->Coverage =
      Report.Complete ? "exhaustive" : "run budget (MaxRuns) exhausted";
  C->Valid = Report.Holds && C->CoverageComplete;
  C->Obligations = Report.Obligations;
  C->Runs = Report.Runs;
  C->Moves = Report.Moves;
  if (!Report.Holds)
    C->Notes.push_back(Report.Counterexample);
  return C;
}
