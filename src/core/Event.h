//===- core/Event.h - Observable events ------------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observable events, the atoms of the paper's semantic model (§3.1,
/// Fig. 7).  Every shared-primitive call performed by a CPU/thread is
/// recorded as an event appended to the global log; hardware scheduling is
/// itself an event.  An event is written `i.kind(args)` in the paper, e.g.
/// `1.FAI_t` or `c.push(b, v)`.
///
/// The kind is stored interned (support/Intern.h): construction, equality
/// and footprint lookup are integer operations, and snapshotting a machine
/// no longer clones one heap string per logged event.  Certificates and
/// rendering resolve the string back via kind()/Kind.str(), so everything
/// serialized is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_EVENT_H
#define CCAL_CORE_EVENT_H

#include "support/Hash.h"
#include "support/Intern.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {

/// Identifier of a participant in the concurrency game: a CPU id at the
/// multicore layers (§3) or a thread id at the multithreaded layers (§5).
using ThreadId = std::uint32_t;

/// The event kind reserved for hardware-scheduler transitions ("the
/// scheduler acts as a judge of the game", §2).  A `sched` event with
/// Tid = c records that control transferred to participant c.
inline const char *const SchedEventKind = "sched";

/// The interned form of SchedEventKind (isSched() is one integer compare).
KindId schedKindId();

/// One observable event `Tid.Kind(Args)`.
struct Event {
  ThreadId Tid = 0;
  KindId Kind;
  std::vector<std::int64_t> Args;

  Event() = default;
  Event(ThreadId Tid, KindId Kind, std::vector<std::int64_t> Args = {})
      : Tid(Tid), Kind(Kind), Args(std::move(Args)) {}

  /// Convenience constructor for a scheduling event transferring control to
  /// participant \p To.
  static Event sched(ThreadId To) { return Event(To, schedKindId()); }

  bool isSched() const { return Kind == schedKindId(); }

  /// The kind string (stable interned storage; reference never dangles).
  const std::string &kind() const { return Kind.str(); }

  bool operator==(const Event &O) const {
    return Tid == O.Tid && Kind == O.Kind && Args == O.Args;
  }
  bool operator!=(const Event &O) const { return !(*this == O); }

  /// Renders as "i.kind(a0, a1)"; scheduling events render as "->i".
  std::string toString() const;
};

/// Total order used to store events in ordered containers; the order has no
/// semantic meaning but must be stable across runs, so kinds compare by
/// string (KindId::operator<), never by interning-order id.
bool operator<(const Event &A, const Event &B);

/// Structural hash for state-dedup tables, built on support/Hash.h's
/// Hasher discipline; the kind enters through its cached content hash
/// (KindId::strHash), so the value is independent of interning order.
/// Inline (and header-only) because Log::push_back folds it into the
/// log's running hash on every append.
inline std::uint64_t hashEvent(const Event &E) {
  Hasher H;
  H.u64(E.Tid).u64(E.Kind.strHash()).i64s(E.Args);
  return H.value();
}

} // namespace ccal

#endif // CCAL_CORE_EVENT_H
