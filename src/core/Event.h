//===- core/Event.h - Observable events ------------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observable events, the atoms of the paper's semantic model (§3.1,
/// Fig. 7).  Every shared-primitive call performed by a CPU/thread is
/// recorded as an event appended to the global log; hardware scheduling is
/// itself an event.  An event is written `i.kind(args)` in the paper, e.g.
/// `1.FAI_t` or `c.push(b, v)`.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_EVENT_H
#define CCAL_CORE_EVENT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {

/// Identifier of a participant in the concurrency game: a CPU id at the
/// multicore layers (§3) or a thread id at the multithreaded layers (§5).
using ThreadId = std::uint32_t;

/// The event kind reserved for hardware-scheduler transitions ("the
/// scheduler acts as a judge of the game", §2).  A `sched` event with
/// Tid = c records that control transferred to participant c.
inline const char *const SchedEventKind = "sched";

/// One observable event `Tid.Kind(Args)`.
struct Event {
  ThreadId Tid = 0;
  std::string Kind;
  std::vector<std::int64_t> Args;

  Event() = default;
  Event(ThreadId Tid, std::string Kind, std::vector<std::int64_t> Args = {})
      : Tid(Tid), Kind(std::move(Kind)), Args(std::move(Args)) {}

  /// Convenience constructor for a scheduling event transferring control to
  /// participant \p To.
  static Event sched(ThreadId To) { return Event(To, SchedEventKind); }

  bool isSched() const { return Kind == SchedEventKind; }

  bool operator==(const Event &O) const {
    return Tid == O.Tid && Kind == O.Kind && Args == O.Args;
  }
  bool operator!=(const Event &O) const { return !(*this == O); }

  /// Renders as "i.kind(a0, a1)"; scheduling events render as "->i".
  std::string toString() const;
};

/// Total order used to store events in ordered containers; the order has no
/// semantic meaning.
bool operator<(const Event &A, const Event &B);

/// FNV-style hash for state-dedup tables.
std::uint64_t hashEvent(const Event &E);

} // namespace ccal

#endif // CCAL_CORE_EVENT_H
