//===- core/Strategy.h - Game-semantic strategies --------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strategies (§2): each participant of the concurrency game contributes a
/// deterministic partial function from the current global log to its next
/// move whenever the last event transfers control to it.  The paper draws
/// strategies as automata, e.g. the ticket-lock acquire specification
///
///     ?E, !i.FAI_t, v t  -->  (spin: ?E, !i.get_n, v n != t)
///                        -->  ?E, !i.get_n, v t  -->  ?E, !i.hold
///
/// We reify exactly that: an AutomatonStrategy has integer control states
/// and a deterministic transition function from (state, log) to a move.  A
/// move emits zero or more events, may produce a return value, and may
/// enter or leave the *critical state* (gray states in the paper, in which
/// the environment is never queried).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_STRATEGY_H
#define CCAL_CORE_STRATEGY_H

#include "core/Log.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace ccal {

/// One move of a strategy when control is transferred to it.
struct StrategyMove {
  /// Events appended to the global log by this move (possibly none, the
  /// paper's silent move `!e`... with the empty event `ε`).
  std::vector<Event> Events;

  /// Return value produced by this move (the paper's `v t`), if any.
  std::optional<std::int64_t> Return;

  /// Whether the strategy is in the critical state *after* this move
  /// ("there is no need to ask E in critical state", §2).
  bool CriticalAfter = false;
};

/// A deterministic partial strategy.  Implementations are stateful automata;
/// clone() produces an independent copy at the same control state so that
/// checkers can branch over environment choices.
class Strategy {
public:
  virtual ~Strategy();

  /// Independent deep copy at the current control state.
  virtual std::unique_ptr<Strategy> clone() const = 0;

  /// Presents the current log; produces the next move or std::nullopt when
  /// the strategy is stuck on this log (a safety violation at this layer).
  virtual std::optional<StrategyMove> onScheduled(const Log &L) = 0;

  /// True once the strategy has completed all of its moves and became idle
  /// (the reflexive `?l', !ε` edge in §2).
  virtual bool done() const = 0;

  /// True while in the critical state (no environment query before the next
  /// move).
  virtual bool critical() const = 0;

  /// Human-readable name ("phi_acq[1]").
  virtual std::string describe() const = 0;
};

/// A strategy given by an explicit automaton.
class AutomatonStrategy final : public Strategy {
public:
  using State = std::int64_t;

  /// Result of one automaton transition: the move plus the next state.
  struct Transition {
    StrategyMove Move;
    State Next = 0;
  };

  /// Deterministic transition function; std::nullopt means the automaton is
  /// stuck at (state, log).
  using Delta =
      std::function<std::optional<Transition>(State, const Log &)>;

  /// \p Accept is the idle/done state.
  AutomatonStrategy(std::string Name, State Start, State Accept, Delta D)
      : Name(std::move(Name)), Cur(Start), Accept(Accept),
        D(std::move(D)) {}

  std::unique_ptr<Strategy> clone() const override {
    auto Copy = std::make_unique<AutomatonStrategy>(Name, Cur, Accept, D);
    Copy->InCritical = InCritical;
    return Copy;
  }

  std::optional<StrategyMove> onScheduled(const Log &L) override;

  bool done() const override { return Cur == Accept; }
  bool critical() const override { return InCritical; }
  std::string describe() const override { return Name; }

  State state() const { return Cur; }

private:
  std::string Name;
  State Cur;
  State Accept;
  Delta D;
  bool InCritical = false;
};

/// Builds the one-shot *atomic* strategy of an overlay interface (§2):
/// query E, emit the single event `Tid.Kind(Args)`, and return the value
/// computed by \p RetFn from the log *including* the new event.  This is
/// the shape of every atomic object specification in the paper.
std::unique_ptr<Strategy> makeAtomicCallStrategy(
    ThreadId Tid, std::string Kind, std::vector<std::int64_t> Args,
    std::function<std::optional<std::int64_t>(const Log &)> RetFn);

/// A strategy that is already done (an idle participant).
std::unique_ptr<Strategy> makeIdleStrategy(std::string Name);

/// Runs the strategies in \p Seq one after the other (each must finish
/// before the next is scheduled); used to build per-thread client
/// strategies like "call acq; then rel".
std::unique_ptr<Strategy>
makeSeqStrategy(std::string Name,
                std::vector<std::unique_ptr<Strategy>> Seq);

} // namespace ccal

#endif // CCAL_CORE_STRATEGY_H
