//===- core/Certificate.h - Refinement certificates ------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Refinement certificates: the executable stand-in for the paper's Coq
/// "mechanized proof objects".  A certificate records which rule of the
/// layer calculus produced it, the statement `L'[A] |- M : L[A]` it
/// establishes, how many obligations were discharged by checking, and the
/// premise certificates — so the full Fig. 5 derivation tree can be
/// rendered and audited.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_CERTIFICATE_H
#define CCAL_CORE_CERTIFICATE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccal {

/// A machine-checked refinement fact with its evidence counts.
struct RefinementCertificate {
  /// Which calculus rule produced this certificate ("Fun", "Vcomp",
  /// "Hcomp", "Wk", "Pcomp", "Soundness", "MulticoreLink", ...).
  std::string Rule;

  /// The statement `Underlay[Focus] |- Module : Overlay[Focus]` via
  /// relation \p Relation.  Focus is rendered into the names.
  std::string Underlay;
  std::string Module;
  std::string Overlay;
  std::string Relation;

  /// Whether every checked obligation held.  A certificate is only Valid
  /// when its evidence also covers the full schedule space it quantifies
  /// over (CoverageComplete) — a truncated exploration discharges nothing.
  bool Valid = false;

  /// True when every exploration backing this certificate (and, for
  /// composed rules, every premise) ran to completion rather than being
  /// cut off by a budget.  Checkers must never produce Valid=true with
  /// CoverageComplete=false.
  bool CoverageComplete = false;

  /// Human-readable coverage statement: "exhaustive", or which budget
  /// truncated which exploration.
  std::string Coverage;

  /// Evidence counters: individual simulation obligations matched, distinct
  /// complete runs (schedules x env choices) explored, total strategy or
  /// machine moves executed, and log invariants verified.
  std::uint64_t Obligations = 0;
  std::uint64_t Runs = 0;
  std::uint64_t Moves = 0;
  std::uint64_t Invariants = 0;

  /// Premise certificates (the subderivations of the Fig. 5 tree).
  std::vector<std::shared_ptr<const RefinementCertificate>> Premises;

  /// Free-form diagnostics (counterexample traces on failure).
  std::vector<std::string> Notes;

  /// "L0[1] |-R1 M1 : L1[1]".
  std::string statement() const;

  /// Renders this certificate and its premises as an indented derivation
  /// tree (the shape of Fig. 5).
  std::string tree() const;

  /// Sum of this certificate's counters and all premises', recursively.
  std::uint64_t totalObligations() const;
  std::uint64_t totalRuns() const;
  std::uint64_t totalInvariants() const;
};

using CertPtr = std::shared_ptr<const RefinementCertificate>;

} // namespace ccal

#endif // CCAL_CORE_CERTIFICATE_H
