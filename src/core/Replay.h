//===- core/Replay.h - Replay functions ------------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replay functions (§2): "functions that reconstruct the current shared
/// state from the log".  A replay function folds over the event log; an
/// event the state cannot accept makes the replay *stuck* — the executable
/// analogue of the machine getting stuck on a data race (§3.1).
///
/// Each object defines its own replay (`Rticket` for the ticket lock,
/// `Rshared` for push/pull memory, `Rsched` for the scheduler...); this
/// header provides the shared fold machinery plus determinism helpers.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_REPLAY_H
#define CCAL_CORE_REPLAY_H

#include "core/Log.h"

#include <functional>
#include <optional>

namespace ccal {

/// A replay function over logs producing shared state of type \p State.
/// `Step(S, E)` returns the successor state or std::nullopt when the event
/// is not acceptable in state S (stuck — e.g. pulling an owned location).
template <typename State> class Replayer {
public:
  using StepFn = std::function<std::optional<State>(const State &,
                                                    const Event &)>;

  Replayer(State Init, StepFn Step)
      : Init(std::move(Init)), Step(std::move(Step)) {}

  /// Replays the full log from the initial state.
  std::optional<State> replay(const Log &L) const {
    return replayFrom(Init, L, 0);
  }

  /// Replays \p L starting at index \p From with explicit start state; used
  /// by incremental checkers that cache a prefix.
  std::optional<State> replayFrom(State S, const Log &L, size_t From) const {
    for (size_t I = From, E = L.size(); I != E; ++I) {
      std::optional<State> Next = Step(S, L[I]);
      if (!Next)
        return std::nullopt;
      S = std::move(*Next);
    }
    return S;
  }

  /// True when the whole log replays without getting stuck ("well-formed",
  /// Fig. 8).
  bool wellFormed(const Log &L) const { return replay(L).has_value(); }

  const State &initial() const { return Init; }

private:
  State Init;
  StepFn Step;
};

} // namespace ccal

#endif // CCAL_CORE_REPLAY_H
