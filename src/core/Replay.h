//===- core/Replay.h - Replay functions ------------------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replay functions (§2): "functions that reconstruct the current shared
/// state from the log".  A replay function folds over the event log; an
/// event the state cannot accept makes the replay *stuck* — the executable
/// analogue of the machine getting stuck on a data race (§3.1).
///
/// Each object defines its own replay (`Rticket` for the ticket lock,
/// `Rshared` for push/pull memory, `Rsched` for the scheduler...); this
/// header provides the shared fold machinery plus determinism helpers.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_REPLAY_H
#define CCAL_CORE_REPLAY_H

#include "core/Log.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>

namespace ccal {

namespace detail {
/// Distinct Replayer constructions get distinct ids; copies share their
/// origin's (same semantics), so the replay memo below may serve either.
inline std::uint64_t nextReplayerId() {
  static std::atomic<std::uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}
} // namespace detail

/// A replay function over logs producing shared state of type \p State.
/// `Step(S, E)` returns the successor state or std::nullopt when the event
/// is not acceptable in state S (stuck — e.g. pulling an owned location).
template <typename State> class Replayer {
public:
  using StepFn = std::function<std::optional<State>(const State &,
                                                    const Event &)>;

  Replayer(State Init, StepFn Step)
      : Init(std::move(Init)), Step(std::move(Step)) {}

  /// Declares that Step is the IDENTITY on every event kind not listed,
  /// letting replay skip foreign events with an integer compare instead
  /// of a type-erased Step call — on machine logs most events belong to
  /// other objects (scheduling, other primitives), so this removes the
  /// dominant cost of log-replay primitives.  The caller is promising the
  /// semantic fact; a Step that inspects unlisted kinds must not use this.
  Replayer &onlyKinds(std::initializer_list<KindId> Kinds) {
    Relevant.assign(Kinds.begin(), Kinds.end());
    return *this;
  }

  /// Replays the full log from the initial state.
  ///
  /// Memoized per thread: the machines dry-run every parked CPU against
  /// the same global log before each step, and each Explorer frame's log
  /// is its parent's plus one event, so consecutive calls either repeat a
  /// fold or extend one.  An exact hit returns the memoized state; a
  /// prefix hit resumes replayFrom at the memoized state and only folds
  /// the new suffix.  Both are verified structurally — O(tail) in
  /// practice, because probe and memo share sealed chunks — never by hash
  /// alone, and a stuck prefix stays stuck under extension, so every
  /// answer is exactly what the full fold would compute.  Thread-local
  /// storage keeps workers race-free without locks.
  std::optional<State> replay(const Log &L) const {
    struct Memo {
      std::uint64_t Who = 0; ///< MemoId of the producing Replayer
      Log L;
      std::optional<State> S;
    };
    thread_local std::array<Memo, 4> Memos;
    thread_local unsigned Next = 0;
    const Memo *Prefix = nullptr;
    for (const Memo &M : Memos) {
      if (M.Who != MemoId || M.L.size() > L.size())
        continue;
      if (M.L.size() == L.size()) {
        if (M.L == L)
          return M.S;
        continue;
      }
      if ((!Prefix || M.L.size() > Prefix->L.size()) && M.L.isPrefixOf(L))
        Prefix = &M;
    }
    std::optional<State> Res =
        Prefix ? (Prefix->S ? replayFrom(*Prefix->S, L, Prefix->L.size())
                            : std::nullopt)
               : replayFrom(Init, L, 0);
    Memo &M = Memos[Next++ % Memos.size()];
    M.Who = MemoId;
    M.L = L;
    M.S = Res;
    return Res;
  }

  /// Replays \p L starting at index \p From with explicit start state; used
  /// by incremental checkers that cache a prefix.
  std::optional<State> replayFrom(State S, const Log &L, size_t From) const {
    const bool Filter = !Relevant.empty();
    for (size_t I = From, E = L.size(); I != E; ++I) {
      const Event &Ev = L[I];
      if (Filter && !isRelevant(Ev.Kind))
        continue;
      std::optional<State> Next = Step(S, Ev);
      if (!Next)
        return std::nullopt;
      S = std::move(*Next);
    }
    return S;
  }

  /// True when the whole log replays without getting stuck ("well-formed",
  /// Fig. 8).
  bool wellFormed(const Log &L) const { return replay(L).has_value(); }

  const State &initial() const { return Init; }

private:
  bool isRelevant(KindId K) const {
    for (KindId R : Relevant)
      if (R == K)
        return true;
    return false;
  }

  State Init;
  StepFn Step;
  std::vector<KindId> Relevant; ///< empty = every kind is relevant
  std::uint64_t MemoId = detail::nextReplayerId();
};

} // namespace ccal

#endif // CCAL_CORE_REPLAY_H
