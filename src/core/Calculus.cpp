//===- core/Calculus.cpp - The concurrent layer calculus -------------------===//

#include "core/Calculus.h"

#include "cert/CertStore.h"
#include "support/Check.h"

#include <algorithm>

using namespace ccal;

std::string CertifiedLayer::atFocus(const std::string &Name,
                                    const std::vector<ThreadId> &Focus) {
  std::string Out = Name + "[";
  if (Focus.size() == 1) {
    Out += std::to_string(Focus[0]);
  } else {
    Out += "{";
    for (size_t I = 0, E = Focus.size(); I != E; ++I) {
      if (I != 0)
        Out += ",";
      Out += std::to_string(Focus[I]);
    }
    Out += "}";
  }
  Out += "]";
  return Out;
}

static std::vector<ThreadId> sortedFocus(std::vector<ThreadId> F) {
  std::sort(F.begin(), F.end());
  return F;
}

/// Coverage of a composed rule: the conjunction over its premises —
/// composition adds no exploration of its own, so a composed certificate
/// covers the schedule space exactly when every premise does.  Keeps a
/// truncated leaf from laundering into a Valid derivation tree.
static void inheritCoverage(RefinementCertificate &C) {
  C.CoverageComplete = true;
  C.Coverage = "inherited from premises";
  for (const auto &P : C.Premises)
    if (!P->CoverageComplete) {
      C.CoverageComplete = false;
      C.Coverage = "premise coverage incomplete: " + P->Coverage;
      return;
    }
}

CertifiedLayer calculus::empty(LayerPtr L, std::vector<ThreadId> Focus) {
  CCAL_CHECK(L != nullptr, "Empty rule needs an interface");
  CertifiedLayer Out;
  Out.Underlay = L;
  Out.Overlay = L;
  Out.ModuleName = "(empty)";
  Out.Focus = sortedFocus(std::move(Focus));
  Out.Relation = "id";
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "Empty";
  C->Underlay = CertifiedLayer::atFocus(L->name(), Out.Focus);
  C->Overlay = C->Underlay;
  C->Module = Out.ModuleName;
  C->Relation = "id";
  C->Valid = true;
  C->CoverageComplete = true;
  C->Coverage = "axiomatic (no obligations)";
  Out.Cert = C;
  return Out;
}

CertifiedLayer calculus::fun(LayerPtr Underlay, std::string ModuleName,
                             LayerPtr Overlay, std::vector<ThreadId> Focus,
                             const EventMap &R, const SimReport &Report) {
  CCAL_CHECK(Underlay && Overlay, "Fun rule needs both interfaces");
  CCAL_CHECK(Report.Holds, "Fun rule premise failed: simulation not held");
  CertifiedLayer Out;
  Out.Underlay = std::move(Underlay);
  Out.Overlay = std::move(Overlay);
  Out.ModuleName = std::move(ModuleName);
  Out.Focus = sortedFocus(std::move(Focus));
  Out.Relation = R.name();
  auto C = std::make_shared<RefinementCertificate>(*makeFunCertificate(
      CertifiedLayer::atFocus(Out.Underlay->name(), Out.Focus),
      Out.ModuleName,
      CertifiedLayer::atFocus(Out.Overlay->name(), Out.Focus), R, Report));
  Out.Cert = C;
  return Out;
}

CertifiedLayer calculus::fromCertificate(LayerPtr Underlay,
                                         std::string ModuleName,
                                         LayerPtr Overlay,
                                         std::vector<ThreadId> Focus,
                                         std::string Relation,
                                         CertPtr Cert) {
  CCAL_CHECK(Underlay && Overlay && Cert, "leaf layer needs all parts");
  CCAL_CHECK(Cert->Valid, "leaf certificate is invalid");
  CertifiedLayer Out;
  Out.Underlay = std::move(Underlay);
  Out.Overlay = std::move(Overlay);
  Out.ModuleName = std::move(ModuleName);
  Out.Focus = sortedFocus(std::move(Focus));
  Out.Relation = std::move(Relation);
  Out.Cert = std::move(Cert);
  return Out;
}

CertifiedLayer calculus::vcomp(const CertifiedLayer &A,
                               const CertifiedLayer &B) {
  CCAL_CHECK(A.valid() && B.valid(), "Vcomp premises must be valid");
  CCAL_CHECK(A.Overlay->name() == B.Underlay->name(),
             "Vcomp: A's overlay must be B's underlay");
  CCAL_CHECK(A.Focus == B.Focus, "Vcomp: focus sets must coincide");

  CertifiedLayer Out;
  Out.Underlay = A.Underlay;
  Out.Overlay = B.Overlay;
  Out.ModuleName = A.ModuleName + " (+) " + B.ModuleName;
  Out.Focus = A.Focus;
  Out.Relation = A.Relation == "id"
                     ? B.Relation
                     : (B.Relation == "id" ? A.Relation
                                           : A.Relation + " o " + B.Relation);
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "Vcomp";
  C->Underlay = CertifiedLayer::atFocus(Out.Underlay->name(), Out.Focus);
  C->Overlay = CertifiedLayer::atFocus(Out.Overlay->name(), Out.Focus);
  C->Module = Out.ModuleName;
  C->Relation = Out.Relation;
  C->Premises = {A.Cert, B.Cert};
  inheritCoverage(*C);
  C->Valid = C->CoverageComplete;
  Out.Cert = C;
  return Out;
}

CertifiedLayer calculus::hcomp(const CertifiedLayer &A,
                               const CertifiedLayer &B,
                               LayerPtr MergedOverlay) {
  CCAL_CHECK(A.valid() && B.valid(), "Hcomp premises must be valid");
  CCAL_CHECK(A.Underlay->name() == B.Underlay->name(),
             "Hcomp: same underlay required");
  CCAL_CHECK(A.Focus == B.Focus, "Hcomp: focus sets must coincide");
  CCAL_CHECK(A.Relation == B.Relation,
             "Hcomp: same simulation relation required");
  CCAL_CHECK(MergedOverlay != nullptr, "Hcomp: merged overlay required");
  // The merged overlay must provide everything both overlays provide.
  for (const auto &Side : {A, B})
    for (const std::string &PN : Side.Overlay->primNames())
      CCAL_CHECK(MergedOverlay->provides(PN),
                 "Hcomp: merged overlay misses a primitive");

  CertifiedLayer Out;
  Out.Underlay = A.Underlay;
  Out.Overlay = std::move(MergedOverlay);
  Out.ModuleName = A.ModuleName + " (+) " + B.ModuleName;
  Out.Focus = A.Focus;
  Out.Relation = A.Relation;
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "Hcomp";
  C->Underlay = CertifiedLayer::atFocus(Out.Underlay->name(), Out.Focus);
  C->Overlay = CertifiedLayer::atFocus(Out.Overlay->name(), Out.Focus);
  C->Module = Out.ModuleName;
  C->Relation = Out.Relation;
  C->Premises = {A.Cert, B.Cert};
  inheritCoverage(*C);
  C->Valid = C->CoverageComplete;
  Out.Cert = C;
  return Out;
}

CertifiedLayer calculus::wk(LayerPtr NewUnderlay, CertPtr UnderlaySim,
                            const CertifiedLayer &Mid, CertPtr OverlaySim,
                            LayerPtr NewOverlay) {
  CCAL_CHECK(Mid.valid(), "Wk premise must be valid");
  CCAL_CHECK(!UnderlaySim || UnderlaySim->Valid,
             "Wk: underlay simulation certificate invalid");
  CCAL_CHECK(!OverlaySim || OverlaySim->Valid,
             "Wk: overlay simulation certificate invalid");

  CertifiedLayer Out = Mid;
  std::string Rel = Mid.Relation;
  if (UnderlaySim) {
    CCAL_CHECK(NewUnderlay != nullptr, "Wk: new underlay required");
    Out.Underlay = NewUnderlay;
    Rel = UnderlaySim->Relation + " o " + Rel;
  }
  if (OverlaySim) {
    CCAL_CHECK(NewOverlay != nullptr, "Wk: new overlay required");
    Out.Overlay = NewOverlay;
    Rel = Rel + " o " + OverlaySim->Relation;
  }
  Out.Relation = Rel;
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "Wk";
  C->Underlay = CertifiedLayer::atFocus(Out.Underlay->name(), Out.Focus);
  C->Overlay = CertifiedLayer::atFocus(Out.Overlay->name(), Out.Focus);
  C->Module = Out.ModuleName;
  C->Relation = Out.Relation;
  if (UnderlaySim)
    C->Premises.push_back(UnderlaySim);
  C->Premises.push_back(Mid.Cert);
  if (OverlaySim)
    C->Premises.push_back(OverlaySim);
  inheritCoverage(*C);
  C->Valid = C->CoverageComplete;
  Out.Cert = C;
  return Out;
}

CertPtr calculus::CompatReport::cert(const std::string &Interface) const {
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "Compat";
  C->Underlay = Interface;
  C->Overlay = Interface;
  C->Module = "(guarantees imply relies)";
  C->Relation = "id";
  C->Valid = Holds;
  // The implication check runs over the whole corpus it is given; the
  // corpus itself comes from the premise explorations, whose coverage the
  // composed rule tracks separately.
  C->CoverageComplete = true;
  C->Coverage = "corpus-sampled (guarantee => rely)";
  C->Invariants = Details.size();
  C->Runs = LogsChecked;
  for (const ImplicationReport &I : Details)
    if (!I.Holds)
      C->Notes.push_back("failed: " + I.Premise + " => " + I.Conclusion +
                         " on " + logToString(I.Counterexample));
  return C;
}

namespace {

const char CompatCheckerVersion[] = "compat-v1";

JsonValue compatToPayload(const calculus::CompatReport &R) {
  JsonValue V;
  V.K = JsonValue::Kind::Object;
  V.Fields["holds"] = jsonBool(R.Holds);
  V.Fields["logs_checked"] = jsonUInt(R.LogsChecked);
  std::vector<JsonValue> Details;
  for (const ImplicationReport &I : R.Details)
    Details.push_back(cert::implicationToJson(I));
  V.Fields["details"] = jsonArray(std::move(Details));
  return V;
}

bool compatFromPayload(const JsonValue &V, calculus::CompatReport &R) {
  const JsonValue *Holds = V.field("holds");
  const JsonValue *Logs = V.field("logs_checked");
  const JsonValue *Details = V.field("details");
  if (!Holds || !Holds->isBool() || !Logs || !Logs->IsInt || !Details ||
      !Details->isArray())
    return false;
  R.Holds = Holds->BoolVal;
  R.LogsChecked = static_cast<std::uint64_t>(Logs->IntVal);
  R.Details.clear();
  for (const JsonValue &D : Details->Items) {
    ImplicationReport I;
    if (!cert::implicationFromJson(D, I))
      return false;
    R.Details.push_back(std::move(I));
  }
  return true;
}

calculus::CompatReport checkCompatImpl(const LayerInterface &L,
                                       const std::vector<ThreadId> &FocusA,
                                       const std::vector<ThreadId> &FocusB,
                                       const std::vector<Log> &Corpus) {
  calculus::CompatReport Out;
  const RelyGuarantee &RG = L.rg();
  auto CheckDir = [&](const std::vector<ThreadId> &Members) {
    // For every i in Members: G(i) => R(i): what i guarantees satisfies
    // what the other side relies upon for i.
    for (ThreadId Tid : Members) {
      ImplicationReport R =
          checkImplication(RG.guar(Tid), RG.rely(Tid), Corpus);
      Out.LogsChecked += R.LogsChecked;
      if (!R.Holds)
        Out.Holds = false;
      Out.Details.push_back(std::move(R));
    }
  };
  CheckDir(FocusA);
  CheckDir(FocusB);
  return Out;
}

} // namespace

calculus::CompatReport
calculus::checkCompat(const LayerInterface &L,
                      const std::vector<ThreadId> &FocusA,
                      const std::vector<ThreadId> &FocusB,
                      const std::vector<Log> &Corpus) {
  // Fig. 9 Compat premise: A _|_ B.
  for (ThreadId IdA : FocusA)
    for (ThreadId IdB : FocusB)
      CCAL_CHECK(IdA != IdB, "Compat: focus sets must be disjoint");

  // Load-or-recheck front-end.  The corpus is part of the content address
  // (the check quantifies over exactly those logs), and the rely/guarantee
  // semantics enter through their invariant names via keyAddLayer — the
  // store's documented naming contract.  Composed calculus rules (vcomp,
  // hcomp, pcomp) need no caching of their own: they are pure combinators
  // over premise certificates, so once the leaf checks (Fun/Soundness/
  // Compat) cache, editing one layer re-discharges only that layer's
  // obligations while every other premise loads.
  cert::CertStore *Store = cert::store();
  if (!Store)
    return checkCompatImpl(L, FocusA, FocusB, Corpus);

  cert::CertKey Key;
  Key.Checker = "compat";
  Key.Version = CompatCheckerVersion;
  Key.Desc = "compat over " + L.name();
  Hasher H;
  cert::keyAddLayer(H, L);
  H.u64(FocusA.size());
  for (ThreadId T : FocusA)
    H.u64(T);
  H.u64(FocusB.size());
  for (ThreadId T : FocusB)
    H.u64(T);
  H.u64(Corpus.size());
  for (const Log &Lg : Corpus)
    cert::keyAddLog(H, Lg);
  Key.Hash = H.value();

  CompatReport Report;
  Store->getOrCheck(
      Key,
      [&](const cert::CertStore::Entry &E) {
        return compatFromPayload(E.Payload, Report);
      },
      [&] {
        Report = checkCompatImpl(L, FocusA, FocusB, Corpus);
        cert::CertStore::Entry Out;
        Out.Cert = Report.cert(L.name());
        Out.Payload = compatToPayload(Report);
        return Out;
      });
  return Report;
}

CertifiedLayer calculus::pcomp(const CertifiedLayer &A,
                               const CertifiedLayer &B,
                               const CompatReport &UnderlayCompat,
                               const CompatReport &OverlayCompat) {
  CCAL_CHECK(A.valid() && B.valid(), "Pcomp premises must be valid");
  CCAL_CHECK(A.Underlay->name() == B.Underlay->name() &&
                 A.Overlay->name() == B.Overlay->name(),
             "Pcomp: both layers must connect the same interfaces");
  CCAL_CHECK(A.ModuleName == B.ModuleName,
             "Pcomp: the same module must be verified on both sides");
  CCAL_CHECK(A.Relation == B.Relation,
             "Pcomp: simulation relations must coincide");
  for (ThreadId IdA : A.Focus)
    for (ThreadId IdB : B.Focus)
      CCAL_CHECK(IdA != IdB, "Pcomp: focus sets must be disjoint");
  CCAL_CHECK(UnderlayCompat.Holds && OverlayCompat.Holds,
             "Pcomp: compat side conditions failed");

  CertifiedLayer Out;
  Out.Underlay = A.Underlay;
  Out.Overlay = A.Overlay;
  Out.ModuleName = A.ModuleName;
  Out.Focus = A.Focus;
  Out.Focus.insert(Out.Focus.end(), B.Focus.begin(), B.Focus.end());
  std::sort(Out.Focus.begin(), Out.Focus.end());
  Out.Relation = A.Relation;
  auto C = std::make_shared<RefinementCertificate>();
  C->Rule = "Pcomp";
  C->Underlay = CertifiedLayer::atFocus(Out.Underlay->name(), Out.Focus);
  C->Overlay = CertifiedLayer::atFocus(Out.Overlay->name(), Out.Focus);
  C->Module = Out.ModuleName;
  C->Relation = Out.Relation;
  C->Premises = {A.Cert, B.Cert,
                 UnderlayCompat.cert(A.Underlay->name()),
                 OverlayCompat.cert(A.Overlay->name())};
  inheritCoverage(*C);
  C->Valid = C->CoverageComplete;
  Out.Cert = C;
  return Out;
}
