//===- core/RelyGuarantee.h - Rely/guarantee conditions --------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rely and guarantee conditions (§2, §3.2, Fig. 7).  In the paper both are
/// "simply expressed as invariants over the global log": the rely condition
/// R(i) constrains what events participant i's *environment* may contribute
/// (the validity of environment contexts), and the guarantee G(i) is the
/// invariant participant i's own events maintain.  The Compat rule of the
/// layer calculus (Fig. 9) demands that each side's guarantee implies the
/// other side's rely.
///
/// Executably, an invariant is a predicate over logs, and implication is
/// checked over a *corpus* of logs produced by exploration: for every log
/// in the corpus on which the premise holds, the conclusion must hold too.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_RELYGUARANTEE_H
#define CCAL_CORE_RELYGUARANTEE_H

#include "core/Log.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ccal {

/// A named invariant over the global log (the `Inv` of Fig. 7).
struct LogInvariant {
  std::string Name;
  std::function<bool(const Log &)> Holds;

  /// The trivial invariant, satisfied by every log.
  static LogInvariant top(std::string Name = "true");

  /// Conjunction of two invariants.
  static LogInvariant conj(const LogInvariant &A, const LogInvariant &B);

  /// Disjunction of two invariants.
  static LogInvariant disj(const LogInvariant &A, const LogInvariant &B);
};

/// Per-participant rely and guarantee maps (`R, G : Id -> Inv`, Fig. 7).
/// A participant missing from a map has the trivial condition.
struct RelyGuarantee {
  std::map<ThreadId, LogInvariant> Rely;
  std::map<ThreadId, LogInvariant> Guar;

  const LogInvariant &rely(ThreadId Tid) const;
  const LogInvariant &guar(ThreadId Tid) const;

  /// Intersection of rely conditions / union of guarantees, as required for
  /// the composed interface `L[A u B]` in the Compat rule.
  static RelyGuarantee compose(const RelyGuarantee &A,
                               const RelyGuarantee &B,
                               const std::vector<ThreadId> &FocusA,
                               const std::vector<ThreadId> &FocusB);
};

/// Result of one executable implication check `Premise => Conclusion` over
/// a corpus of logs.
struct ImplicationReport {
  std::string Premise;
  std::string Conclusion;
  std::uint64_t LogsChecked = 0;
  bool Holds = true;
  Log Counterexample; // first log where premise held but conclusion failed
};

/// Checks `A => B` over every log in \p Corpus.
ImplicationReport checkImplication(const LogInvariant &A,
                                   const LogInvariant &B,
                                   const std::vector<Log> &Corpus);

} // namespace ccal

#endif // CCAL_CORE_RELYGUARANTEE_H
