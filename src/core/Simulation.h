//===- core/Simulation.h - Strategy simulation (Def 2.1) -------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strategy simulation `phi <=_R phi'` (Definition 2.1): "for any two
/// related environmental event sequences and any two related initial logs,
/// for any log l produced by phi, there must exist a log l' that can be
/// produced by phi' such that l and l' also satisfy R."
///
/// Relations R between logs are given as *event abstraction maps* — the
/// shape every relation in the paper takes (e.g. R1 maps `i.hold` to
/// `i.acq`, `i.inc_n` to `i.rel`, and the remaining lock events to empty
/// ones).  The checker runs the implementation strategy against every
/// environment behavior offered by an EnvModel (the executable rely
/// condition), maps each emitted event through R, and demands the
/// specification strategy produce exactly the mapped events, with matching
/// return values on matched moves.  Every run explored without a mismatch
/// discharges one batch of simulation obligations; a failing run yields a
/// counterexample trace.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_SIMULATION_H
#define CCAL_CORE_SIMULATION_H

#include "core/Certificate.h"
#include "core/EnvContext.h"
#include "core/Strategy.h"

#include <functional>
#include <optional>
#include <string>

namespace ccal {

/// A simulation relation between logs, represented as a per-event
/// abstraction map: events mapping to std::nullopt are erased ("mapped to
/// empty ones"); the mapped implementation log must equal the spec log.
class EventMap {
public:
  using MapFn = std::function<std::optional<Event>(const Event &)>;

  EventMap(std::string Name, MapFn Fn)
      : TheName(std::move(Name)), Fn(std::move(Fn)) {}

  /// Default-constructs the identity relation.
  EventMap() : EventMap("id", [](const Event &E) { return E; }) {}

  /// The identity relation `id`.
  static EventMap identity();

  /// `compose(R, S)` is the relation R followed by S (the calculus'
  /// `R o S` for Vcomp).
  static EventMap compose(const EventMap &R, const EventMap &S);

  const std::string &name() const { return TheName; }

  std::optional<Event> map(const Event &E) const { return Fn(E); }

  /// Maps every event, dropping the erased ones.
  Log apply(const Log &L) const;

private:
  std::string TheName;
  MapFn Fn;
};

/// Tuning knobs for the simulation search.
struct SimOptions {
  /// Maximum implementation moves along one run before the run is
  /// considered divergent (a liveness failure under a valid environment).
  unsigned MaxMoves = 64;

  /// Maximum complete runs to explore (guards pathological env models).
  std::uint64_t MaxRuns = 1u << 20;

  /// Stable name identifying the EnvModel's semantics in certificate-store
  /// keys ("scripted:fig3", "strategy-env:ticket[2]", ...).  EnvModel is
  /// an opaque decision tree the key cannot hash, so simulation checks are
  /// cacheable only when the caller names it; an empty EnvKey bypasses the
  /// store (fail closed).  The strategies and relation enter the key
  /// through describe()/name() on their own.
  std::string EnvKey;
};

/// Outcome of a simulation check.
struct SimReport {
  bool Holds = false;

  /// False when MaxRuns cut the search off before every environment branch
  /// was explored (Holds is then false too — a truncated search proves
  /// nothing); recorded in the certificate's coverage fields.
  bool Complete = true;

  std::uint64_t Runs = 0;        ///< complete runs explored
  std::uint64_t Moves = 0;       ///< implementation moves executed
  std::uint64_t Obligations = 0; ///< matched spec moves
  std::string Counterexample;    ///< non-empty when !Holds
};

/// Checks `Impl <=_R Spec` for every environment behavior enumerated by
/// \p Env; both strategies and the env are cloned per branch.
SimReport checkStrategySimulation(const Strategy &Impl, const Strategy &Spec,
                                  const EventMap &R, const EnvModel &Env,
                                  const SimOptions &Opts = SimOptions());

/// Wraps a successful simulation check into a "Fun"-rule certificate for
/// the statement `Underlay |- Module : Overlay`.
CertPtr makeFunCertificate(const std::string &Underlay,
                           const std::string &Module,
                           const std::string &Overlay, const EventMap &R,
                           const SimReport &Report);

} // namespace ccal

#endif // CCAL_CORE_SIMULATION_H
