//===- core/Footprint.h - Step footprints for independence -----*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Read/write footprints over abstract shared locations, the independence
/// relation they induce, and canonical (Mazurkiewicz-trace) log forms.
///
/// Every shared primitive's observable behavior is a function of the log;
/// a footprint names which *parts* of that replayed shared state the
/// primitive reads and writes, as free-form location strings ("tkt.next",
/// "lock.acq", ...).  Two steps of different participants are independent
/// iff their footprints do not conflict; independent steps commute, so the
/// Explorer's partial-order reduction may explore one interleaving of a
/// commuting pair on behalf of both.
///
/// The declared footprint is a contract with three obligations (checked
/// dynamically by checkPorEquivalence, never assumed):
///   1. the events a primitive appends and the value it returns depend on
///      the log only through its Reads;
///   2. the replayed locations it changes are covered by its Writes —
///      including whatever a *blocked* primitive's retry condition reads,
///      so enabledness of one participant cannot change behind a
///      supposedly-independent step;
///   3. any Explorer Invariant's order-sensitivity between two event kinds
///      is covered by a conflict between their kinds' footprints.
///
/// An Opaque footprint ("unknown effects") conflicts with everything and
/// is the default for undeclared primitives: reduction degrades to full
/// exploration, which is always sound.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_FOOTPRINT_H
#define CCAL_CORE_FOOTPRINT_H

#include "core/Log.h"

#include <functional>
#include <string>
#include <vector>

namespace ccal {

/// Declared read/write set of one step over abstract shared locations.
struct Footprint {
  /// Sorted, duplicate-free location names (use Footprint::of to build).
  std::vector<std::string> Reads;
  std::vector<std::string> Writes;

  /// Unknown effects: conflicts with every non-local footprint.
  bool Opaque = false;

  /// A default-constructed footprint is *local*: it touches no shared
  /// location and commutes with everything (a hardware instruction, a
  /// private primitive).
  bool local() const { return !Opaque && Reads.empty() && Writes.empty(); }

  static Footprint opaque() {
    Footprint F;
    F.Opaque = true;
    return F;
  }

  /// Builds a footprint from arbitrary (unsorted, possibly duplicated)
  /// location lists.
  static Footprint of(std::vector<std::string> Reads,
                      std::vector<std::string> Writes);

  /// Structural equality (location vectors are kept sorted, so this is
  /// set equality).  Used by the Explorer's sleep-set subset test when
  /// deciding whether a cached visit covers a revisit under POR.
  bool operator==(const Footprint &O) const {
    return Opaque == O.Opaque && Reads == O.Reads && Writes == O.Writes;
  }
  bool operator!=(const Footprint &O) const { return !(*this == O); }
};

/// A participant's step footprint — the unit of the Explorer's sleep sets,
/// of DPOR race replay, and of cached subtree summaries: "participant
/// \p Tid took (or would take) a step with footprint \p Foot".
struct ParticipantFootprint {
  ThreadId Tid;
  Footprint Foot;

  bool operator==(const ParticipantFootprint &O) const {
    return Tid == O.Tid && Foot == O.Foot;
  }
};

/// True when the steps behind \p A and \p B do not commute: either one is
/// opaque (and the other non-local), or a write of one intersects a read
/// or write of the other.  Local footprints never conflict.
bool footprintsConflict(const Footprint &A, const Footprint &B);

/// Canonical linearization of the Mazurkiewicz trace of \p L: two events
/// depend on each other iff they share a participant or their kinds'
/// footprints (per \p FootOfKind) conflict; the canonical form is the
/// dependence-respecting order that always picks the ready event with the
/// smallest (Tid, per-Tid index).  Every linearization of the same trace
/// canonicalizes to the same log, so deduplicating canonical logs
/// identifies schedules that differ only in the order of independent
/// steps — what lets POR report "identical outcome sets" with far fewer
/// schedules even though every schedule's raw log is distinct.
Log canonicalizeLog(const Log &L,
                    const std::function<Footprint(KindId Kind)> &FootOfKind);

} // namespace ccal

#endif // CCAL_CORE_FOOTPRINT_H
