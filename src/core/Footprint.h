//===- core/Footprint.h - Step footprints for independence -----*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Read/write footprints over abstract shared locations, the independence
/// relation they induce, and canonical (Mazurkiewicz-trace) log forms.
///
/// Every shared primitive's observable behavior is a function of the log;
/// a footprint names which *parts* of that replayed shared state the
/// primitive reads and writes, as free-form location strings ("tkt.next",
/// "lock.acq", ...).  Two steps of different participants are independent
/// iff their footprints do not conflict; independent steps commute, so the
/// Explorer's partial-order reduction may explore one interleaving of a
/// commuting pair on behalf of both.
///
/// The declared footprint is a contract with three obligations (checked
/// dynamically by checkPorEquivalence, never assumed):
///   1. the events a primitive appends and the value it returns depend on
///      the log only through its Reads;
///   2. the replayed locations it changes are covered by its Writes —
///      including whatever a *blocked* primitive's retry condition reads,
///      so enabledness of one participant cannot change behind a
///      supposedly-independent step;
///   3. any Explorer Invariant's order-sensitivity between two event kinds
///      is covered by a conflict between their kinds' footprints.
///
/// An Opaque footprint ("unknown effects") conflicts with everything and
/// is the default for undeclared primitives: reduction degrades to full
/// exploration, which is always sound.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_FOOTPRINT_H
#define CCAL_CORE_FOOTPRINT_H

#include "core/Log.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ccal {

/// C11-style memory order of a primitive's shared accesses.  The default
/// everywhere is SeqCst, which is exactly the pre-memory-model semantics:
/// a footprint whose orders were never touched behaves — and hashes, and
/// certifies — identically to one built before orders existed.
enum class MemOrder : std::uint8_t {
  Relaxed,
  Acquire,
  Release,
  AcqRel,
  SeqCst,
};

const char *memOrderName(MemOrder O);

/// Declared read/write set of one step over abstract shared locations.
struct Footprint {
  /// Sorted, duplicate-free location names (use Footprint::of to build).
  std::vector<std::string> Reads;
  std::vector<std::string> Writes;

  /// Unknown effects: conflicts with every non-local footprint.
  bool Opaque = false;

  /// Memory order of the primitive's reads (resp. writes) of its shared
  /// locations.  One order per side, not per location: our primitives are
  /// small enough that a single annotation covers every location they
  /// touch, and a per-location map would complicate hashing for nothing.
  MemOrder ReadOrd = MemOrder::SeqCst;
  MemOrder WriteOrd = MemOrder::SeqCst;

  /// When a primitive both reads and writes a location, Atomic means the
  /// two form one indivisible RMW (fetch-and-increment, CAS): the read
  /// always observes the latest write in modification order, whatever
  /// ReadOrd says.  Non-atomic read+write is a *torn* access — under a
  /// weak model the read may be stale, which is how the broken ticket
  /// lock's duplicate tickets arise.
  bool Atomic = true;

  /// The primitive also executes an SC fence (join with the global SC
  /// view before its reads and publish to it after its writes).
  bool ScFence = false;

  /// Memory-fair read: the reads-from enumeration always resolves to the
  /// latest write, while the synchronization effect still follows
  /// ReadOrd.  This is the spin-assume / await-termination assumption of
  /// weak-memory model checking (GenMC et al.): a spin-loop iteration
  /// that reads a stale value just re-loops, so RC11's "a load may read
  /// stale forever" would make every spin lock diverge under exploration;
  /// annotating the spin read fair models the liveness side of the
  /// hardware (a store eventually propagates) without strengthening the
  /// ordering side.
  bool FairRead = false;

  /// A default-constructed footprint is *local*: it touches no shared
  /// location and commutes with everything (a hardware instruction, a
  /// private primitive).
  bool local() const { return !Opaque && Reads.empty() && Writes.empty(); }

  static Footprint opaque() {
    Footprint F;
    F.Opaque = true;
    return F;
  }

  /// Builds a footprint from arbitrary (unsorted, possibly duplicated)
  /// location lists.
  static Footprint of(std::vector<std::string> Reads,
                      std::vector<std::string> Writes);

  /// True when any annotation differs from the SC defaults — the footprint
  /// opts in to weak-memory treatment (reads-from enumeration under
  /// RaMemory, ordering-aware conflict detection, order-folding CertKeys).
  bool weakOrdered() const {
    return ReadOrd != MemOrder::SeqCst || WriteOrd != MemOrder::SeqCst ||
           !Atomic || ScFence || FairRead;
  }

  /// Copy with the given read/write orders (builder style, so layer
  /// definitions read as `Footprint::of(...).withOrders(...)`).
  Footprint withOrders(MemOrder R, MemOrder W) const {
    Footprint F = *this;
    F.ReadOrd = R;
    F.WriteOrd = W;
    return F;
  }

  /// Copy with the read/write pair demoted to a torn (non-RMW) access.
  Footprint nonAtomic() const {
    Footprint F = *this;
    F.Atomic = false;
    return F;
  }

  /// Copy that also executes an SC fence.
  Footprint withScFence() const {
    Footprint F = *this;
    F.ScFence = true;
    return F;
  }

  /// Copy with the read marked memory-fair (spin-loop await).
  Footprint fairRead() const {
    Footprint F = *this;
    F.FairRead = true;
    return F;
  }

  /// A read with this order synchronizes (joins the writer's view) when it
  /// reads from a release-or-stronger write.
  bool readActsAcquire() const {
    return ReadOrd == MemOrder::Acquire || ReadOrd == MemOrder::AcqRel ||
           ReadOrd == MemOrder::SeqCst;
  }

  /// A write with this order publishes the writer's view for acquirers.
  bool writeActsRelease() const {
    return WriteOrd == MemOrder::Release || WriteOrd == MemOrder::AcqRel ||
           WriteOrd == MemOrder::SeqCst;
  }

  /// Structural equality (location vectors are kept sorted, so this is
  /// set equality).  Used by the Explorer's sleep-set subset test when
  /// deciding whether a cached visit covers a revisit under POR.
  bool operator==(const Footprint &O) const {
    return Opaque == O.Opaque && Reads == O.Reads && Writes == O.Writes &&
           ReadOrd == O.ReadOrd && WriteOrd == O.WriteOrd &&
           Atomic == O.Atomic && ScFence == O.ScFence &&
           FairRead == O.FairRead;
  }
  bool operator!=(const Footprint &O) const { return !(*this == O); }
};

/// A participant's step footprint — the unit of the Explorer's sleep sets,
/// of DPOR race replay, and of cached subtree summaries: "participant
/// \p Tid took (or would take) a step with footprint \p Foot".
struct ParticipantFootprint {
  ThreadId Tid;
  Footprint Foot;

  bool operator==(const ParticipantFootprint &O) const {
    return Tid == O.Tid && Foot == O.Foot;
  }
};

/// True when the steps behind \p A and \p B do not commute: either one is
/// opaque (and the other non-local), or a write of one intersects a read
/// or write of the other.  Local footprints never conflict.
///
/// Ordering-aware extension: when either side is weakOrdered(), two reads
/// of the same location also conflict.  Under a weak model a read is not a
/// pure observation — it advances the reader's per-location view front and
/// constrains which stale values remain readable, so two reads of the same
/// location do not commute as state transformers.  This is deliberately
/// conservative (it only ever shrinks the reduction, never the soundness),
/// and it is inert for SC footprints, whose defaults keep weakOrdered()
/// false and the conflict relation bit-identical to the pre-model code.
bool footprintsConflict(const Footprint &A, const Footprint &B);

/// Canonical linearization of the Mazurkiewicz trace of \p L: two events
/// depend on each other iff they share a participant or their kinds'
/// footprints (per \p FootOfKind) conflict; the canonical form is the
/// dependence-respecting order that always picks the ready event with the
/// smallest (Tid, per-Tid index).  Every linearization of the same trace
/// canonicalizes to the same log, so deduplicating canonical logs
/// identifies schedules that differ only in the order of independent
/// steps — what lets POR report "identical outcome sets" with far fewer
/// schedules even though every schedule's raw log is distinct.
Log canonicalizeLog(const Log &L,
                    const std::function<Footprint(KindId Kind)> &FootOfKind);

} // namespace ccal

#endif // CCAL_CORE_FOOTPRINT_H
