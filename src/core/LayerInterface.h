//===- core/LayerInterface.h - Layer interfaces ----------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrent layer interfaces `L[A] = (L, R, G)` (§3.2, Fig. 7): a
/// collection of primitives, a rely condition (the valid environment
/// contexts), and a guarantee condition (the invariant local events
/// maintain).
///
/// A primitive's semantics is a (partial) function of the calling thread,
/// the arguments, the current global log, and the caller's CPU-local memory
/// — the paper's `Prim in State -> List Val -> State -> Val -> Prop`,
/// deterministic here.  Shared primitives append events and may read/write
/// the local copy of shared memory (the push/pull model delivers shared
/// effects this way, Fig. 8); private primitives touch only local memory.
/// A primitive returning std::nullopt is *stuck*: the executable analogue
/// of undefined behaviour such as a data race, which verification must show
/// unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_LAYERINTERFACE_H
#define CCAL_CORE_LAYERINTERFACE_H

#include "core/Footprint.h"
#include "core/Log.h"
#include "core/RelyGuarantee.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccal {

/// Everything a primitive may observe when invoked.
struct PrimCall {
  /// The calling CPU/thread.
  ThreadId Tid = 0;

  /// Evaluated arguments.
  std::vector<std::int64_t> Args;

  /// The global log *before* this call.
  const Log *L = nullptr;

  /// The caller's CPU-local memory (LAsm globals), or nullptr when invoked
  /// outside a machine (e.g. by the strategy simulation checker).
  const std::vector<std::int64_t> *LocalMem = nullptr;
};

/// Everything a primitive may effect.
struct PrimResult {
  /// Events appended to the global log (empty for private primitives).
  std::vector<Event> Events;

  /// The return value.
  std::int64_t Ret = 0;

  /// Writes delivered into the caller's CPU-local memory, as (address,
  /// value) pairs — how pull materializes the shared copy (Fig. 8).
  std::vector<std::pair<std::int32_t, std::int64_t>> LocalWrites;

  /// True when the primitive cannot proceed *yet* (an atomic blocking
  /// specification, e.g. `acq` while the lock is held).  The machine keeps
  /// the caller parked; the call will be retried when the log has grown.
  /// Unlike std::nullopt (stuck = a safety violation), Blocked is a normal
  /// spec-level state.
  bool Blocked = false;

  static PrimResult blocked() {
    PrimResult R;
    R.Blocked = true;
    return R;
  }
};

/// Deterministic partial semantics of one primitive.
using PrimSemantics =
    std::function<std::optional<PrimResult>(const PrimCall &)>;

/// A named primitive of a layer interface.
struct Primitive {
  std::string Name;

  /// Shared primitives are query/interleaving points (the `|>` marks in
  /// Fig. 10/11); private primitives are silent.
  bool Shared = true;

  /// True for scheduling primitives after which the calling thread never
  /// resumes (the multithreaded machine marks it exited): `texit` and the
  /// atomic `thread_exit`.
  bool ExitsThread = false;

  /// Declared read/write footprint over abstract shared locations (see
  /// core/Footprint.h for the contract), consumed by the Explorer's
  /// partial-order reduction.  Defaults to opaque — undeclared primitives
  /// conflict with everything, so POR degrades to full exploration rather
  /// than trusting a footprint nobody wrote.
  Footprint Foot = Footprint::opaque();

  PrimSemantics Sem;
};

/// A layer interface: primitive collection + rely/guarantee.  Interfaces
/// are immutable once built and shared between certified layers.
class LayerInterface {
public:
  explicit LayerInterface(std::string Name) : Name(std::move(Name)) {}
  LayerInterface(const LayerInterface &) = delete;
  LayerInterface &operator=(const LayerInterface &) = delete;

  const std::string &name() const { return Name; }

  /// Registers a primitive; the name must be fresh.
  void addPrim(Primitive P);

  /// Convenience: registers a shared primitive (opaque footprint).
  void addShared(std::string Name, PrimSemantics Sem);

  /// Convenience: registers a shared primitive with a declared footprint.
  void addShared(std::string Name, PrimSemantics Sem, Footprint Foot);

  /// Convenience: registers a private (silent) primitive.
  void addPrivate(std::string Name, PrimSemantics Sem);

  /// Looks a primitive up; nullptr when absent.
  const Primitive *lookup(const std::string &Name) const;

  /// O(1) lookup by interned kind id — the machine hot path (every
  /// schedulable() dry run and step() resolves the parked primitive).
  const Primitive *lookup(KindId Kind) const {
    auto It = ByKind.find(Kind.id());
    return It == ByKind.end() ? nullptr : It->second;
  }

  /// Disambiguates literal arguments between the two overloads above.
  const Primitive *lookup(const char *Name) const {
    return lookup(std::string(Name));
  }

  /// Declared footprint of primitive \p Name; opaque when the primitive is
  /// unknown or undeclared, so callers can treat any event kind uniformly.
  Footprint footprintOf(const std::string &Name) const;

  /// Footprint by interned kind id (event kinds coincide with primitive
  /// names), for the Explorer's POR footprint queries.
  Footprint footprintOf(KindId Kind) const {
    const Primitive *P = lookup(Kind);
    return P ? P->Foot : Footprint::opaque();
  }

  /// True when the interface provides \p Name.
  bool provides(const std::string &Name) const {
    return lookup(Name) != nullptr;
  }

  /// All primitive names, sorted.
  std::vector<std::string> primNames() const;

  RelyGuarantee &rg() { return RG; }
  const RelyGuarantee &rg() const { return RG; }

  /// The `(+)` of Fig. 9 (Hcomp): union of primitive collections.  Name
  /// clashes must agree by construction and are rejected.
  static std::shared_ptr<LayerInterface>
  merge(std::string Name, const LayerInterface &A, const LayerInterface &B);

private:
  std::string Name;
  std::map<std::string, Primitive> Prims;
  /// Interned-kind index into Prims (node-based map: pointers are stable).
  /// Interfaces are built once and shared by pointer; copying one would
  /// leave these aliasing the source, so copies are disabled.
  std::unordered_map<std::uint32_t, const Primitive *> ByKind;
  RelyGuarantee RG;
};

using LayerPtr = std::shared_ptr<const LayerInterface>;

} // namespace ccal

#endif // CCAL_CORE_LAYERINTERFACE_H
