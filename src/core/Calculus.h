//===- core/Calculus.h - The concurrent layer calculus ---------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fine-grained layer calculus of Fig. 9: rules Empty, Fun, Vcomp,
/// Hcomp, Wk, Compat, and Pcomp for building certified concurrent layers
/// `L[A] |-_R M : L'[A]`.
///
/// Each rule is a combinator that *checks its side conditions at run time*
/// (CCAL_CHECK — the analogue of Coq refusing an ill-typed derivation) and
/// produces a composed RefinementCertificate whose premises record the
/// Fig. 5 derivation tree.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_CALCULUS_H
#define CCAL_CORE_CALCULUS_H

#include "core/Certificate.h"
#include "core/LayerInterface.h"
#include "core/Simulation.h"

#include <vector>

namespace ccal {

/// A certified concurrent abstraction layer: the tuple
/// `(L1[A], M, L2[A])` plus its machine-checked certificate (§1).
struct CertifiedLayer {
  LayerPtr Underlay;
  LayerPtr Overlay;
  std::string ModuleName;
  std::vector<ThreadId> Focus; ///< the focused thread/CPU set A
  std::string Relation;        ///< name of the simulation relation R
  CertPtr Cert;

  bool valid() const { return Cert && Cert->Valid; }

  /// "L0[{1,2}]"-style rendering of an interface at this focus set.
  static std::string atFocus(const std::string &Name,
                             const std::vector<ThreadId> &Focus);
};

namespace calculus {

/// Fig. 9 Empty: `L[A] |-id (empty module) : L[A]`.
CertifiedLayer empty(LayerPtr L, std::vector<ThreadId> Focus);

/// Fig. 9 Fun: wraps a discharged strategy simulation into a leaf layer.
/// Aborts if the report shows the simulation failed.
CertifiedLayer fun(LayerPtr Underlay, std::string ModuleName,
                   LayerPtr Overlay, std::vector<ThreadId> Focus,
                   const EventMap &R, const SimReport &Report);

/// Generalized leaf: wraps any externally produced certificate (e.g. from
/// the machine-level refinement harness) into a certified layer.
CertifiedLayer fromCertificate(LayerPtr Underlay, std::string ModuleName,
                               LayerPtr Overlay,
                               std::vector<ThreadId> Focus,
                               std::string Relation, CertPtr Cert);

/// Fig. 9 Vcomp: `L1 |-R M : L2` and `L2 |-S N : L3` give
/// `L1 |-RoS M (+) N : L3`.  Requires A.Overlay == B.Underlay and equal
/// focus sets.
CertifiedLayer vcomp(const CertifiedLayer &A, const CertifiedLayer &B);

/// Fig. 9 Hcomp: two modules over the same underlay at the same focus,
/// refining sibling interfaces, are merged; the composite overlay is the
/// `(+)` of the two overlays (pass the pre-merged interface).
CertifiedLayer hcomp(const CertifiedLayer &A, const CertifiedLayer &B,
                     LayerPtr MergedOverlay);

/// Fig. 9 Wk (weakening): strengthens the underlay and/or weakens the
/// overlay using interface-simulation certificates (`L'1 <=R L1` and
/// `L2 <=T L'2`); either certificate may be null for the identity.
CertifiedLayer wk(LayerPtr NewUnderlay, CertPtr UnderlaySim,
                  const CertifiedLayer &Mid, CertPtr OverlaySim,
                  LayerPtr NewOverlay);

/// Result of the executable Compat side condition (Fig. 9): each side's
/// guarantee implies the other side's rely, over a corpus of logs.
struct CompatReport {
  bool Holds = true;
  std::uint64_t LogsChecked = 0;
  std::vector<ImplicationReport> Details;
  CertPtr cert(const std::string &Interface) const;
};

/// Checks compat(L[A], L[B], L[A u B]) over \p Corpus: for every i in A,
/// `L.G restricted to B`(i) => `L.R at A`(i), and symmetrically.
CompatReport checkCompat(const LayerInterface &L,
                         const std::vector<ThreadId> &FocusA,
                         const std::vector<ThreadId> &FocusB,
                         const std::vector<Log> &Corpus);

/// Fig. 9 Pcomp (parallel layer composition): same module and relation on
/// disjoint focus sets, with compat certificates for both the underlay and
/// overlay interfaces, yields the layer at the union focus set.
CertifiedLayer pcomp(const CertifiedLayer &A, const CertifiedLayer &B,
                     const CompatReport &UnderlayCompat,
                     const CompatReport &OverlayCompat);

} // namespace calculus
} // namespace ccal

#endif // CCAL_CORE_CALCULUS_H
