//===- core/LayerInterface.cpp - Layer interfaces --------------------------===//

#include "core/LayerInterface.h"

#include "support/Check.h"

using namespace ccal;

void LayerInterface::addPrim(Primitive P) {
  CCAL_CHECK(!P.Name.empty(), "primitive must be named");
  auto [It, Inserted] = Prims.emplace(P.Name, std::move(P));
  CCAL_CHECK(Inserted, "duplicate primitive in layer interface");
  ByKind.emplace(KindId(It->first).id(), &It->second);
}

void LayerInterface::addShared(std::string Name, PrimSemantics Sem) {
  Primitive P;
  P.Name = std::move(Name);
  P.Shared = true;
  P.Sem = std::move(Sem);
  addPrim(std::move(P));
}

void LayerInterface::addShared(std::string Name, PrimSemantics Sem,
                               Footprint Foot) {
  Primitive P;
  P.Name = std::move(Name);
  P.Shared = true;
  P.Sem = std::move(Sem);
  P.Foot = std::move(Foot);
  addPrim(std::move(P));
}

Footprint LayerInterface::footprintOf(const std::string &Name) const {
  const Primitive *P = lookup(Name);
  return P ? P->Foot : Footprint::opaque();
}

void LayerInterface::addPrivate(std::string Name, PrimSemantics Sem) {
  Primitive P;
  P.Name = std::move(Name);
  P.Shared = false;
  P.Sem = std::move(Sem);
  addPrim(std::move(P));
}

const Primitive *LayerInterface::lookup(const std::string &Name) const {
  auto It = Prims.find(Name);
  return It == Prims.end() ? nullptr : &It->second;
}

std::vector<std::string> LayerInterface::primNames() const {
  std::vector<std::string> Out;
  Out.reserve(Prims.size());
  for (const auto &[Name, P] : Prims)
    Out.push_back(Name);
  return Out;
}

std::shared_ptr<LayerInterface>
LayerInterface::merge(std::string Name, const LayerInterface &A,
                      const LayerInterface &B) {
  auto Out = std::make_shared<LayerInterface>(std::move(Name));
  for (const std::string &PN : A.primNames())
    Out->addPrim(*A.lookup(PN));
  for (const std::string &PN : B.primNames()) {
    CCAL_CHECK(!Out->provides(PN),
               "Hcomp merge: modules must provide disjoint primitives");
    Out->addPrim(*B.lookup(PN));
  }
  // Fig. 9 Hcomp requires both layers to share rely/guarantee; keep A's.
  Out->rg() = A.rg();
  return Out;
}
