//===- core/Footprint.cpp - Step footprints for independence -----------------===//

#include "core/Footprint.h"

#include <algorithm>
#include <map>
#include <queue>

using namespace ccal;

const char *ccal::memOrderName(MemOrder O) {
  switch (O) {
  case MemOrder::Relaxed:
    return "relaxed";
  case MemOrder::Acquire:
    return "acquire";
  case MemOrder::Release:
    return "release";
  case MemOrder::AcqRel:
    return "acq_rel";
  case MemOrder::SeqCst:
    return "seq_cst";
  }
  return "?";
}

Footprint Footprint::of(std::vector<std::string> Reads,
                        std::vector<std::string> Writes) {
  auto Normalize = [](std::vector<std::string> &V) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  };
  Footprint F;
  F.Reads = std::move(Reads);
  F.Writes = std::move(Writes);
  Normalize(F.Reads);
  Normalize(F.Writes);
  return F;
}

namespace {

/// Intersection test on sorted vectors.
bool intersects(const std::vector<std::string> &A,
                const std::vector<std::string> &B) {
  auto IA = A.begin();
  auto IB = B.begin();
  while (IA != A.end() && IB != B.end()) {
    int C = IA->compare(*IB);
    if (C == 0)
      return true;
    if (C < 0)
      ++IA;
    else
      ++IB;
  }
  return false;
}

} // namespace

bool ccal::footprintsConflict(const Footprint &A, const Footprint &B) {
  if (A.local() || B.local())
    return false;
  if (A.Opaque || B.Opaque)
    return true;
  if (intersects(A.Writes, B.Writes) || intersects(A.Writes, B.Reads) ||
      intersects(A.Reads, B.Writes))
    return true;
  // Under a weak model same-location reads advance view fronts and so do
  // not commute; see the header comment.  Inert for SC footprints.
  if (A.weakOrdered() || B.weakOrdered())
    return intersects(A.Reads, B.Reads);
  return false;
}

Log ccal::canonicalizeLog(
    const Log &L, const std::function<Footprint(KindId Kind)> &FootOfKind) {
  const size_t N = L.size();
  if (N < 2)
    return L;

  // Footprints are kind-determined; look each kind up once (keyed by the
  // interned id — integer map probes, no string compares).
  std::map<std::uint32_t, Footprint> FootCache;
  auto FootOf = [&](const Event &E) -> const Footprint & {
    auto It = FootCache.find(E.Kind.id());
    if (It == FootCache.end())
      It = FootCache.emplace(E.Kind.id(), FootOfKind(E.Kind)).first;
    return It->second;
  };

  // Event identity within the trace: (Tid, per-Tid index).  Both are
  // preserved by any reordering that keeps per-participant order, so the
  // dependence DAG below — and hence its canonical linearization — is the
  // same for every linearization of the same trace.
  std::vector<std::uint64_t> Seq(N);
  {
    std::map<ThreadId, std::uint64_t> PerTid;
    for (size_t I = 0; I != N; ++I)
      Seq[I] = PerTid[L[I].Tid]++;
  }

  std::vector<std::vector<size_t>> Succ(N);
  std::vector<size_t> Indegree(N, 0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      if (L[I].Tid != L[J].Tid &&
          !footprintsConflict(FootOf(L[I]), FootOf(L[J])))
        continue;
      Succ[I].push_back(J);
      ++Indegree[J];
    }

  // Kahn's algorithm; the ready event with the smallest (Tid, Seq) wins,
  // which is a total order since (Tid, Seq) is unique per event.
  using Key = std::pair<std::pair<ThreadId, std::uint64_t>, size_t>;
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> Ready;
  for (size_t I = 0; I != N; ++I)
    if (Indegree[I] == 0)
      Ready.push({{L[I].Tid, Seq[I]}, I});

  Log Out;
  Out.reserve(N);
  while (!Ready.empty()) {
    size_t I = Ready.top().second;
    Ready.pop();
    Out.push_back(L[I]);
    for (size_t J : Succ[I])
      if (--Indegree[J] == 0)
        Ready.push({{L[J].Tid, Seq[J]}, J});
  }
  return Out;
}
