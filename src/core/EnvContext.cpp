//===- core/EnvContext.cpp - Environment contexts --------------------------===//

#include "core/EnvContext.h"

#include "support/Check.h"

using namespace ccal;

EnvModel::~EnvModel() = default;

namespace {

class NullEnv final : public EnvModel {
public:
  std::unique_ptr<EnvModel> clone() const override {
    return std::make_unique<NullEnv>();
  }
  std::vector<EnvChoice> choices(const Log &) const override {
    EnvChoice C;
    C.ReturnsControl = true;
    return {C};
  }
  void advance(size_t Idx, const Log &) override {
    CCAL_CHECK(Idx == 0, "null environment has a single choice");
  }
};

class ScriptedEnv final : public EnvModel {
public:
  explicit ScriptedEnv(std::vector<EnvChoice> Script)
      : Script(std::move(Script)) {}

  std::unique_ptr<EnvModel> clone() const override {
    auto C = std::make_unique<ScriptedEnv>(Script);
    C->Pos = Pos;
    return C;
  }

  std::vector<EnvChoice> choices(const Log &) const override {
    if (Pos >= Script.size())
      return {};
    return {Script[Pos]};
  }

  void advance(size_t Idx, const Log &) override {
    CCAL_CHECK(Idx == 0 && Pos < Script.size(),
               "scripted environment advanced past its script");
    ++Pos;
  }

private:
  std::vector<EnvChoice> Script;
  size_t Pos = 0;
};

/// Union of participant strategies plus an enumerated fair scheduler.
///
/// Choice layout: if some environment participant is in its critical state
/// it is the unique choice (index 0).  Otherwise choice 0 returns control
/// to the focused set, and choice k >= 1 schedules the k-th live
/// participant for one move.
class StrategyEnv final : public EnvModel {
public:
  StrategyEnv(std::map<ThreadId, std::shared_ptr<Strategy>> Participants,
              unsigned MaxEnvMoves, unsigned FairReturnBound)
      : Participants(std::move(Participants)), MaxEnvMoves(MaxEnvMoves),
        FairReturnBound(FairReturnBound) {}

  std::unique_ptr<EnvModel> clone() const override {
    std::map<ThreadId, std::shared_ptr<Strategy>> Copy;
    for (const auto &[Tid, S] : Participants)
      Copy.emplace(Tid, std::shared_ptr<Strategy>(S->clone()));
    auto C = std::make_unique<StrategyEnv>(std::move(Copy), MaxEnvMoves,
                                           FairReturnBound);
    C->MovesThisQuery = MovesThisQuery;
    C->ConsecReturns = ConsecReturns;
    return C;
  }

  std::vector<EnvChoice> choices(const Log &L) const override {
    if (std::optional<ThreadId> Crit = criticalId())
      return {makeMoveChoice(*Crit, L)};

    std::vector<ThreadId> Movers = moverIds();
    std::vector<EnvChoice> Out;
    // Fairness: after FairReturnBound consecutive returns with live
    // participants, the environment must schedule someone.
    bool MustProgress = FairReturnBound > 0 && !Movers.empty() &&
                        ConsecReturns >= FairReturnBound &&
                        MovesThisQuery < MaxEnvMoves;
    if (!MustProgress) {
      EnvChoice Back;
      Back.ReturnsControl = true;
      Out.push_back(Back);
    }
    if (MovesThisQuery >= MaxEnvMoves)
      return Out;
    for (ThreadId Tid : Movers)
      Out.push_back(makeMoveChoice(Tid, L));
    return Out;
  }

  void advance(size_t Idx, const Log &L) override {
    if (std::optional<ThreadId> Crit = criticalId()) {
      CCAL_CHECK(Idx == 0, "critical env participant must move");
      stepParticipant(*Crit, L);
      return;
    }
    std::vector<ThreadId> Movers = moverIds();
    bool MustProgress = FairReturnBound > 0 && !Movers.empty() &&
                        ConsecReturns >= FairReturnBound &&
                        MovesThisQuery < MaxEnvMoves;
    if (!MustProgress && Idx == 0) {
      MovesThisQuery = 0; // control returned; next query starts afresh
      ++ConsecReturns;
      return;
    }
    size_t MoverIdx = MustProgress ? Idx : Idx - 1;
    CCAL_CHECK(MoverIdx < Movers.size(), "bad environment choice index");
    stepParticipant(Movers[MoverIdx], L);
    ConsecReturns = 0;
  }

private:
  void stepParticipant(ThreadId Tid, const Log &L) {
    std::optional<StrategyMove> M = Participants[Tid]->onScheduled(L);
    CCAL_CHECK(M.has_value(),
               "environment strategy got stuck (rely condition violated)");
    ++MovesThisQuery;
  }

  EnvChoice makeMoveChoice(ThreadId Tid, const Log &L) const {
    // Peek the move on a clone so choices() stays const.
    std::unique_ptr<Strategy> Probe = Participants.at(Tid)->clone();
    std::optional<StrategyMove> M = Probe->onScheduled(L);
    CCAL_CHECK(M.has_value(),
               "environment strategy got stuck (rely condition violated)");
    EnvChoice C;
    C.ReturnsControl = false;
    C.Events = M->Events;
    return C;
  }

  std::vector<ThreadId> moverIds() const {
    std::vector<ThreadId> Out;
    for (const auto &[Tid, S] : Participants)
      if (!S->done())
        Out.push_back(Tid);
    return Out;
  }

  std::optional<ThreadId> criticalId() const {
    for (const auto &[Tid, S] : Participants)
      if (!S->done() && S->critical())
        return Tid;
    return std::nullopt;
  }

  std::map<ThreadId, std::shared_ptr<Strategy>> Participants;
  unsigned MaxEnvMoves;
  unsigned FairReturnBound;
  unsigned MovesThisQuery = 0;
  unsigned ConsecReturns = 0;
};

} // namespace

std::unique_ptr<EnvModel> ccal::makeNullEnv() {
  return std::make_unique<NullEnv>();
}

std::unique_ptr<EnvModel>
ccal::makeScriptedEnv(std::vector<EnvChoice> Script) {
  return std::make_unique<ScriptedEnv>(std::move(Script));
}

std::unique_ptr<EnvModel> ccal::makeStrategyEnv(
    std::map<ThreadId, std::shared_ptr<Strategy>> Participants,
    unsigned MaxEnvMoves, unsigned FairReturnBound) {
  return std::make_unique<StrategyEnv>(std::move(Participants), MaxEnvMoves,
                                       FairReturnBound);
}
