//===- core/Strategy.cpp - Game-semantic strategies ------------------------===//

#include "core/Strategy.h"

#include "support/Check.h"

using namespace ccal;

Strategy::~Strategy() = default;

std::optional<StrategyMove> AutomatonStrategy::onScheduled(const Log &L) {
  CCAL_CHECK(!done(), "scheduling a finished strategy");
  std::optional<Transition> T = D(Cur, L);
  if (!T)
    return std::nullopt;
  Cur = T->Next;
  InCritical = T->Move.CriticalAfter;
  return T->Move;
}

std::unique_ptr<Strategy> ccal::makeAtomicCallStrategy(
    ThreadId Tid, std::string Kind, std::vector<std::int64_t> Args,
    std::function<std::optional<std::int64_t>(const Log &)> RetFn) {
  std::string Name = "phi_" + Kind + "[" + std::to_string(Tid) + "]";
  Event E(Tid, Kind, Args);
  auto D = [E, RetFn](AutomatonStrategy::State S, const Log &L)
      -> std::optional<AutomatonStrategy::Transition> {
    CCAL_CHECK(S == 0, "atomic strategy has a single live state");
    Log Extended = L;
    Extended.push_back(E);
    std::optional<std::int64_t> Ret =
        RetFn ? RetFn(Extended) : std::optional<std::int64_t>(0);
    if (!Ret)
      return std::nullopt; // The replay is stuck: the spec refuses this call.
    AutomatonStrategy::Transition T;
    T.Move.Events.push_back(E);
    T.Move.Return = *Ret;
    T.Next = 1;
    return T;
  };
  return std::make_unique<AutomatonStrategy>(std::move(Name), 0, 1,
                                             std::move(D));
}

std::unique_ptr<Strategy> ccal::makeIdleStrategy(std::string Name) {
  auto D = [](AutomatonStrategy::State, const Log &)
      -> std::optional<AutomatonStrategy::Transition> {
    CCAL_UNREACHABLE("idle strategy never moves");
  };
  return std::make_unique<AutomatonStrategy>(std::move(Name), 0, 0,
                                             std::move(D));
}

namespace {

/// Schedules a vector of strategies in sequence.
class SeqStrategy final : public Strategy {
public:
  SeqStrategy(std::string Name, std::vector<std::unique_ptr<Strategy>> Seq)
      : Name(std::move(Name)), Seq(std::move(Seq)) {}

  std::unique_ptr<Strategy> clone() const override {
    std::vector<std::unique_ptr<Strategy>> Copy;
    Copy.reserve(Seq.size());
    for (const auto &S : Seq)
      Copy.push_back(S->clone());
    auto C = std::make_unique<SeqStrategy>(Name, std::move(Copy));
    C->Idx = Idx;
    return C;
  }

  std::optional<StrategyMove> onScheduled(const Log &L) override {
    skipDone();
    CCAL_CHECK(Idx < Seq.size(), "scheduling a finished strategy sequence");
    std::optional<StrategyMove> M = Seq[Idx]->onScheduled(L);
    skipDone();
    return M;
  }

  bool done() const override {
    for (size_t I = Idx, E = Seq.size(); I != E; ++I)
      if (!Seq[I]->done())
        return false;
    return true;
  }

  bool critical() const override {
    return Idx < Seq.size() && Seq[Idx]->critical();
  }

  std::string describe() const override { return Name; }

private:
  void skipDone() {
    while (Idx < Seq.size() && Seq[Idx]->done())
      ++Idx;
  }

  std::string Name;
  std::vector<std::unique_ptr<Strategy>> Seq;
  size_t Idx = 0;
};

} // namespace

std::unique_ptr<Strategy>
ccal::makeSeqStrategy(std::string Name,
                      std::vector<std::unique_ptr<Strategy>> Seq) {
  return std::make_unique<SeqStrategy>(std::move(Name), std::move(Seq));
}
