//===- core/Event.cpp - Observable events ---------------------------------===//

#include "core/Event.h"

#include "support/Text.h"

#include <tuple>

using namespace ccal;

std::string Event::toString() const {
  if (isSched())
    return strFormat("->%u", Tid);
  std::string Out = strFormat("%u.%s", Tid, Kind.c_str());
  if (!Args.empty()) {
    Out += "(";
    for (size_t I = 0, E = Args.size(); I != E; ++I) {
      if (I != 0)
        Out += ", ";
      Out += std::to_string(Args[I]);
    }
    Out += ")";
  }
  return Out;
}

bool ccal::operator<(const Event &A, const Event &B) {
  return std::tie(A.Tid, A.Kind, A.Args) < std::tie(B.Tid, B.Kind, B.Args);
}

std::uint64_t ccal::hashEvent(const Event &E) {
  std::uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](std::uint64_t V) {
    H ^= V;
    H *= 1099511628211ULL;
  };
  Mix(E.Tid);
  for (char C : E.Kind)
    Mix(static_cast<unsigned char>(C));
  Mix(0xff);
  for (std::int64_t A : E.Args)
    Mix(static_cast<std::uint64_t>(A));
  return H;
}
