//===- core/Event.cpp - Observable events ---------------------------------===//

#include "core/Event.h"

#include "support/Hash.h"
#include "support/Text.h"

using namespace ccal;

KindId ccal::schedKindId() {
  static const KindId K(SchedEventKind);
  return K;
}

std::string Event::toString() const {
  if (isSched())
    return strFormat("->%u", Tid);
  std::string Out = strFormat("%u.%s", Tid, Kind.c_str());
  if (!Args.empty()) {
    Out += "(";
    for (size_t I = 0, E = Args.size(); I != E; ++I) {
      if (I != 0)
        Out += ", ";
      Out += std::to_string(Args[I]);
    }
    Out += ")";
  }
  return Out;
}

bool ccal::operator<(const Event &A, const Event &B) {
  if (A.Tid != B.Tid)
    return A.Tid < B.Tid;
  if (A.Kind != B.Kind)
    return A.Kind < B.Kind; // string order, not id order
  return A.Args < B.Args;
}

