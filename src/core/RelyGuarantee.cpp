//===- core/RelyGuarantee.cpp - Rely/guarantee conditions ------------------===//

#include "core/RelyGuarantee.h"

using namespace ccal;

LogInvariant LogInvariant::top(std::string Name) {
  return {std::move(Name), [](const Log &) { return true; }};
}

LogInvariant LogInvariant::conj(const LogInvariant &A, const LogInvariant &B) {
  auto FA = A.Holds, FB = B.Holds;
  return {"(" + A.Name + " /\\ " + B.Name + ")",
          [FA, FB](const Log &L) { return FA(L) && FB(L); }};
}

LogInvariant LogInvariant::disj(const LogInvariant &A, const LogInvariant &B) {
  auto FA = A.Holds, FB = B.Holds;
  return {"(" + A.Name + " \\/ " + B.Name + ")",
          [FA, FB](const Log &L) { return FA(L) || FB(L); }};
}

static const LogInvariant &topInvariant() {
  static const LogInvariant Top = LogInvariant::top();
  return Top;
}

const LogInvariant &RelyGuarantee::rely(ThreadId Tid) const {
  auto It = Rely.find(Tid);
  return It == Rely.end() ? topInvariant() : It->second;
}

const LogInvariant &RelyGuarantee::guar(ThreadId Tid) const {
  auto It = Guar.find(Tid);
  return It == Guar.end() ? topInvariant() : It->second;
}

RelyGuarantee RelyGuarantee::compose(const RelyGuarantee &A,
                                     const RelyGuarantee &B,
                                     const std::vector<ThreadId> &FocusA,
                                     const std::vector<ThreadId> &FocusB) {
  // Fig. 9, Compat: L[A u B].R = L[A].R n L[B].R and
  //                 L[A u B].G = L[A].G u L[B].G.
  RelyGuarantee Out;
  auto AllIds = FocusA;
  AllIds.insert(AllIds.end(), FocusB.begin(), FocusB.end());
  for (ThreadId Tid : AllIds) {
    Out.Rely.emplace(Tid, LogInvariant::conj(A.rely(Tid), B.rely(Tid)));
    Out.Guar.emplace(Tid, LogInvariant::disj(A.guar(Tid), B.guar(Tid)));
  }
  return Out;
}

ImplicationReport ccal::checkImplication(const LogInvariant &A,
                                         const LogInvariant &B,
                                         const std::vector<Log> &Corpus) {
  ImplicationReport R;
  R.Premise = A.Name;
  R.Conclusion = B.Name;
  for (const Log &L : Corpus) {
    ++R.LogsChecked;
    if (A.Holds(L) && !B.Holds(L)) {
      R.Holds = false;
      R.Counterexample = L;
      return R;
    }
  }
  return R;
}
