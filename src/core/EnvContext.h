//===- core/EnvContext.h - Environment contexts ----------------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Environment contexts (§2, §3.2).  When a layer machine focuses on a set
/// A of participants, everything else — the hardware scheduler plus the
/// participants outside A — is an *environment context* E.  At each query
/// point the machine repeatedly asks E for events until control transfers
/// back to A (the paper's `E[A, l]`).
///
/// Verification must hold for *all* valid environment contexts (the rely
/// condition).  We therefore model the environment as an enumerable
/// decision tree: at every query the EnvModel offers a finite set of
/// choices, and the simulation checker branches over all of them.  A
/// concrete deterministic environment (a scripted schedule, or the union of
/// specific strategies) is the special case of a model with exactly one
/// choice per query.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_CORE_ENVCONTEXT_H
#define CCAL_CORE_ENVCONTEXT_H

#include "core/Strategy.h"

#include <map>
#include <memory>
#include <vector>

namespace ccal {

/// One possible environment response at a query point.
struct EnvChoice {
  /// Events the environment appends to the global log.
  std::vector<Event> Events;

  /// True when this choice transfers control back to the focused set; the
  /// query loop ends after taking such a choice.
  bool ReturnsControl = false;
};

/// Enumerable model of the environment: the executable form of the set of
/// valid environment contexts accepted by a layer's rely condition.
class EnvModel {
public:
  virtual ~EnvModel();

  /// Independent copy at the same internal position (for branch-and-clone
  /// exploration).
  virtual std::unique_ptr<EnvModel> clone() const = 0;

  /// The finite set of possible responses at this query point, given log
  /// \p L.  An empty result means the environment is exhausted/stuck.
  virtual std::vector<EnvChoice> choices(const Log &L) const = 0;

  /// Commits choice \p Idx of the most recent choices() call; \p L is the
  /// log *before* the choice's events are appended (stateful environments
  /// such as strategy unions need it to step their strategies).
  virtual void advance(size_t Idx, const Log &L) = 0;
};

/// Environment with no other participants: the single choice is an
/// immediate transfer of control back (used when the focus set is the full
/// domain D).
std::unique_ptr<EnvModel> makeNullEnv();

/// Environment that plays a fixed script: each call to choices() offers the
/// next batch verbatim.  Used to replay specific schedules such as the
/// paper's "1, 2, 2, 1, 1, 2, 1, 2, 1, 1, 2, 2" example.
std::unique_ptr<EnvModel>
makeScriptedEnv(std::vector<EnvChoice> Script);

/// Environment built from the strategies of the non-focused participants
/// plus a nondeterministic (enumerated) scheduler: at every query point,
/// either some environment participant not yet done is scheduled for one
/// move, or control returns to the focused set.  \p MaxEnvMoves bounds how
/// many environment moves may occur at a single query point so exploration
/// terminates.  A participant in its critical state is forced to keep
/// moving until it leaves it (the gray states of §2).
///
/// \p FairReturnBound, when nonzero, encodes the *fairness* part of the
/// rely condition: after that many consecutive control returns while live
/// participants exist, the environment must schedule one of them — without
/// it, a spinning focused thread could be starved forever by a scheduler
/// that never runs the lock holder, and Def 2.1 checks involving loops
/// would diverge (§2: "the scheduler strategy must be fair").
std::unique_ptr<EnvModel> makeStrategyEnv(
    std::map<ThreadId, std::shared_ptr<Strategy>> Participants,
    unsigned MaxEnvMoves, unsigned FairReturnBound = 0);

} // namespace ccal

#endif // CCAL_CORE_ENVCONTEXT_H
