//===- obs/Metrics.h - Low-overhead metrics registry -----------*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide metrics registry: named counters, gauges, timers, and
/// power-of-two histograms, behind one atomic enablement flag.  The
/// paper's evaluation (§6) is built on measurement — proof effort,
/// compilation stages, lock latency — and the hot subsystems (Explorer,
/// refinement checkers, CompCertX pipeline, runtime locks) report into
/// this registry so the numbers behind BENCH_*.json are inspectable and
/// assertable rather than ad-hoc printouts.
///
/// Cost model.  Every recording call starts with one relaxed atomic load
/// of the enablement flag; when disabled (the default) nothing else
/// happens and the registry stays empty — "no registry entries" is a
/// tested property, not an aspiration.  Instrumented subsystems keep
/// their own local tallies on hot paths (the Explorer's per-worker
/// shards, the optimizer's stats struct) and publish aggregates once per
/// run, so enabling metrics does not perturb the measured loops either.
///
/// Enablement: programmatic (`obs::setEnabled`), per-exploration
/// (`GenericExploreOptions::Metrics`), or the `CCAL_TRACE` environment
/// variable (see obs/Trace.h for the file-dumping forms).
///
/// Thread safety: all registry operations are safe to call concurrently
/// (the parallel Explorer's workers and the runtime-lock benches do); the
/// registry map is mutex-guarded and values are plain integers under that
/// mutex.  The CI TSan job drives this concurrently on purpose.
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBS_METRICS_H
#define CCAL_OBS_METRICS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ccal {
namespace obs {

/// True when the observability layer records anything at all.  One
/// relaxed atomic load — the only cost instrumentation pays when off.
bool enabled();

/// Flips the global enablement flag (sticky; tests and benches flip it
/// around the region they measure).
void setEnabled(bool On);

/// Reads CCAL_TRACE / CCAL_METRICS and enables the layer when either is
/// set to a non-empty, non-"0" value; called once automatically before
/// main via a static initializer.  Returns the resulting enablement.
bool initFromEnv();

/// One histogram: power-of-two buckets (bucket i counts values V with
/// bit_width(V) == i; zero lands in bucket 0) plus count/sum/min/max.
struct HistogramData {
  static constexpr unsigned NumBuckets = 64;
  std::uint64_t Count = 0;
  std::uint64_t Sum = 0;
  std::uint64_t Min = 0;
  std::uint64_t Max = 0;
  std::array<std::uint64_t, NumBuckets> Buckets{};

  /// Upper bound of the bucket holding the q-quantile (0 <= q <= 1); an
  /// estimate within 2x, which is what latency shapes need.
  std::uint64_t quantile(double Q) const;
};

/// A snapshot of one registered metric.
struct MetricSample {
  enum class Kind { Counter, Gauge, Timer, Histogram };
  std::string Name;
  Kind K = Kind::Counter;
  std::uint64_t Count = 0;  ///< counter value / timer or histogram count
  std::int64_t Value = 0;   ///< gauge value
  std::uint64_t TotalNs = 0; ///< timers: accumulated nanoseconds
  HistogramData Hist;       ///< histograms only
};

/// Adds \p Delta to counter \p Name (created on first use).  Counters are
/// monotone: there is no decrement.
void counterAdd(const std::string &Name, std::uint64_t Delta = 1);

/// Sets gauge \p Name to \p Value (created on first use).
void gaugeSet(const std::string &Name, std::int64_t Value);

/// Adds one duration observation to timer \p Name.
void timerRecordNs(const std::string &Name, std::uint64_t Ns);

/// Adds one value observation to histogram \p Name.
void histRecord(const std::string &Name, std::uint64_t Value);

/// Current value of counter \p Name (0 when absent — a disabled run has
/// no entries).
std::uint64_t counterValue(const std::string &Name);

/// Current value of gauge \p Name (0 when absent).
std::int64_t gaugeValue(const std::string &Name);

/// Histogram \p Name (empty when absent).
HistogramData histData(const std::string &Name);

/// Number of registered metrics (0 while disabled — recording while
/// disabled must not create entries).
std::size_t metricsCount();

/// All registered metrics, sorted by name.
std::vector<MetricSample> metricsSnapshot();

/// The registry as a JSON object {"counters": {...}, "gauges": {...},
/// "timers": {...}, "histograms": {...}} — the structure BENCH_*.json
/// embeds.
std::string metricsJson();

/// Drops every registered metric (tests isolate themselves with this).
void metricsReset();

/// RAII timer: records the scope's duration into timer \p Name and (when
/// tracing is on) a span into the trace buffer.  Near-zero when disabled:
/// the constructor is one relaxed load and the destructor one branch.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  const char *Name;
  std::uint64_t StartNs; ///< 0 = disabled at construction
};

/// Monotonic nanoseconds since process start (0 origin keeps Chrome trace
/// timestamps small).
std::uint64_t nowNs();

} // namespace obs
} // namespace ccal

#endif // CCAL_OBS_METRICS_H
