//===- obs/Metrics.cpp - Low-overhead metrics registry ----------------------===//

#include "obs/Metrics.h"

#include "obs/Trace.h"
#include "support/Clock.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>

using namespace ccal;
using namespace ccal::obs;

namespace {

std::atomic<bool> Enabled{false};

/// One registered metric; plain integers guarded by the registry mutex.
struct Metric {
  MetricSample::Kind K = MetricSample::Kind::Counter;
  std::uint64_t Count = 0;
  std::int64_t Value = 0;
  std::uint64_t TotalNs = 0;
  HistogramData Hist;
};

struct Registry {
  std::mutex Mu;
  std::map<std::string, Metric> Metrics;
};

Registry &registry() {
  // Leaked on purpose: the trace exit hook may snapshot metrics after
  // static destructors would have torn a plain static down.
  static Registry *R = new Registry;
  return *R;
}

Metric &entry(Registry &R, const std::string &Name, MetricSample::Kind K) {
  Metric &M = R.Metrics[Name];
  M.K = K; // last writer wins; names are kind-disjoint by convention
  return M;
}

unsigned bucketOf(std::uint64_t V) {
  unsigned B = 0;
  while (V >>= 1)
    ++B;
  return B;
}

/// Env-driven enablement runs before main so every binary honors
/// CCAL_TRACE without code changes.
struct EnvInit {
  EnvInit() { initFromEnv(); }
} EnvInitializer;

} // namespace

bool obs::enabled() { return Enabled.load(std::memory_order_relaxed); }

void obs::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

bool obs::initFromEnv() {
  auto Set = [](const char *Var) {
    const char *V = std::getenv(Var);
    return V && V[0] != '\0' && !(V[0] == '0' && V[1] == '\0');
  };
  if (Set("CCAL_TRACE") || Set("CCAL_METRICS"))
    setEnabled(true);
  return enabled();
}

std::uint64_t obs::nowNs() {
  // One process-wide origin shared with the audit recorder (see
  // support/Clock.h for why divergent clocks would corrupt audit
  // precedence).
  return support::monotonicNowNs();
}

std::uint64_t HistogramData::quantile(double Q) const {
  if (Count == 0)
    return 0;
  std::uint64_t Rank = static_cast<std::uint64_t>(Q * static_cast<double>(Count));
  if (Rank >= Count)
    Rank = Count - 1;
  std::uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen > Rank)
      return B == 0 ? 1 : (2ull << B) - 1; // inclusive upper bound
  }
  return Max;
}

void obs::counterAdd(const std::string &Name, std::uint64_t Delta) {
  if (!enabled())
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  entry(R, Name, MetricSample::Kind::Counter).Count += Delta;
}

void obs::gaugeSet(const std::string &Name, std::int64_t Value) {
  if (!enabled())
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  entry(R, Name, MetricSample::Kind::Gauge).Value = Value;
}

void obs::timerRecordNs(const std::string &Name, std::uint64_t Ns) {
  if (!enabled())
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  Metric &M = entry(R, Name, MetricSample::Kind::Timer);
  ++M.Count;
  M.TotalNs += Ns;
}

void obs::histRecord(const std::string &Name, std::uint64_t Value) {
  if (!enabled())
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  Metric &M = entry(R, Name, MetricSample::Kind::Histogram);
  HistogramData &H = M.Hist;
  if (H.Count == 0 || Value < H.Min)
    H.Min = Value;
  if (Value > H.Max)
    H.Max = Value;
  ++H.Count;
  H.Sum += Value;
  ++H.Buckets[bucketOf(Value)];
}

std::uint64_t obs::counterValue(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  auto It = R.Metrics.find(Name);
  return It == R.Metrics.end() ? 0 : It->second.Count;
}

std::int64_t obs::gaugeValue(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  auto It = R.Metrics.find(Name);
  return It == R.Metrics.end() ? 0 : It->second.Value;
}

HistogramData obs::histData(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  auto It = R.Metrics.find(Name);
  return It == R.Metrics.end() ? HistogramData() : It->second.Hist;
}

std::size_t obs::metricsCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  return R.Metrics.size();
}

std::vector<MetricSample> obs::metricsSnapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  std::vector<MetricSample> Out;
  Out.reserve(R.Metrics.size());
  for (const auto &[Name, M] : R.Metrics) {
    MetricSample S;
    S.Name = Name;
    S.K = M.K;
    S.Count = M.K == MetricSample::Kind::Histogram ? M.Hist.Count : M.Count;
    S.Value = M.Value;
    S.TotalNs = M.TotalNs;
    S.Hist = M.Hist;
    Out.push_back(std::move(S));
  }
  return Out;
}

std::string obs::metricsJson() {
  std::vector<MetricSample> Snap = metricsSnapshot();
  auto Emit = [&Snap](std::string &Out, MetricSample::Kind K,
                      const char *Section,
                      const std::function<std::string(const MetricSample &)>
                          &Render) {
    Out += "  \"";
    Out += Section;
    Out += "\": {";
    bool First = true;
    for (const MetricSample &S : Snap) {
      if (S.K != K)
        continue;
      if (!First)
        Out += ",";
      First = false;
      Out += "\n    \"" + S.Name + "\": " + Render(S);
    }
    Out += First ? "}" : "\n  }";
  };
  std::string Out = "{\n";
  Emit(Out, MetricSample::Kind::Counter, "counters",
       [](const MetricSample &S) { return std::to_string(S.Count); });
  Out += ",\n";
  Emit(Out, MetricSample::Kind::Gauge, "gauges",
       [](const MetricSample &S) { return std::to_string(S.Value); });
  Out += ",\n";
  Emit(Out, MetricSample::Kind::Timer, "timers", [](const MetricSample &S) {
    return "{\"count\": " + std::to_string(S.Count) +
           ", \"total_ns\": " + std::to_string(S.TotalNs) + "}";
  });
  Out += ",\n";
  Emit(Out, MetricSample::Kind::Histogram, "histograms",
       [](const MetricSample &S) {
         const HistogramData &H = S.Hist;
         return "{\"count\": " + std::to_string(H.Count) +
                ", \"sum\": " + std::to_string(H.Sum) +
                ", \"min\": " + std::to_string(H.Min) +
                ", \"max\": " + std::to_string(H.Max) +
                ", \"p50\": " + std::to_string(H.quantile(0.50)) +
                ", \"p90\": " + std::to_string(H.quantile(0.90)) +
                ", \"p99\": " + std::to_string(H.quantile(0.99)) + "}";
       });
  Out += "\n}\n";
  return Out;
}

void obs::metricsReset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  R.Metrics.clear();
}

ScopedTimer::ScopedTimer(const char *Name)
    : Name(Name), StartNs(enabled() ? nowNs() : 0) {
  if (StartNs == 0)
    StartNs = enabled() ? 1 : 0; // 0 is the disabled sentinel
}

ScopedTimer::~ScopedTimer() {
  if (StartNs == 0)
    return;
  timerRecordNs(Name, nowNs() - StartNs);
}
