//===- obs/Trace.cpp - Span traces in Chrome trace_event form ---------------===//

#include "obs/Trace.h"

#include "obs/Metrics.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

using namespace ccal;
using namespace ccal::obs;

namespace {

struct TraceBuffer {
  std::mutex Mu;
  /// Bounded ring: a deque so drop-oldest is O(1) — a daemon traces
  /// indefinitely and must not grow without bound.
  std::deque<TraceEvent> Events;
  std::size_t Cap = TraceDefaultCapacity;
  std::uint64_t Dropped = 0;

  /// Call with Mu held.  Returns how many events were dropped.
  std::uint64_t enforceCap() {
    std::uint64_t N = 0;
    while (Events.size() > Cap) {
      Events.pop_front();
      ++Dropped;
      ++N;
    }
    return N;
  }
};

TraceBuffer &buffer() {
  // Leaked on purpose: the CCAL_TRACE exit dump runs from an atexit hook,
  // which would otherwise race static destruction of this buffer.
  static TraceBuffer *B = new TraceBuffer;
  static bool EnvRead = [] {
    if (const char *V = std::getenv("CCAL_TRACE_MAX"))
      if (unsigned long long Cap = std::strtoull(V, nullptr, 10))
        B->Cap = static_cast<std::size_t>(Cap);
    return true;
  }();
  (void)EnvRead;
  return *B;
}

/// Small stable per-thread ids (Chrome renders one lane per tid).
std::uint64_t threadLane() {
  static std::atomic<std::uint64_t> NextLane{1};
  thread_local std::uint64_t Lane = NextLane.fetch_add(1);
  return Lane;
}

void record(TraceEvent E) {
  TraceBuffer &B = buffer();
  std::uint64_t Dropped;
  {
    std::lock_guard<std::mutex> L(B.Mu);
    B.Events.push_back(std::move(E));
    Dropped = B.enforceCap();
  }
  // Counter outside B.Mu: the registry has its own lock and never takes
  // ours, but keeping the two disjoint makes the no-deadlock argument
  // one line long.
  if (Dropped)
    counterAdd("obs.trace_dropped", Dropped);
}

/// Escapes a string for inclusion in a JSON literal.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// CCAL_TRACE=<path> (any value other than "", "0", "1") dumps the trace
/// there at exit.
struct ExitDump {
  std::string Path;
  ExitDump() {
    const char *V = std::getenv("CCAL_TRACE");
    if (V && V[0] != '\0' && std::string(V) != "0" && std::string(V) != "1")
      Path = V;
    if (!Path.empty())
      std::atexit([] {
        if (traceEventCount() != 0)
          writeChromeTrace(traceFilePath());
      });
  }
};

// Leaked on purpose: the atexit hook above runs after static destructors
// (it is registered inside the constructor, so a by-value static's own
// destructor would be registered later and destroy Path first).
ExitDump &exitDumper() {
  static ExitDump *D = new ExitDump;
  return *D;
}
ExitDump &ExitDumperInit = exitDumper(); // force construction before main

} // namespace

Span::Span(const char *Name, const char *Cat)
    : Name(Name), Cat(Cat), StartNs(0) {
  if (enabled()) {
    StartNs = nowNs();
    if (StartNs == 0)
      StartNs = 1;
  }
}

Span::~Span() {
  if (StartNs == 0)
    return;
  std::uint64_t End = nowNs();
  timerRecordNs(Name, End - StartNs);
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Ph = 'X';
  E.TsNs = StartNs;
  E.DurNs = End - StartNs;
  E.Tid = threadLane();
  record(std::move(E));
}

void obs::traceInstant(const std::string &Name, const char *Cat) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Ph = 'i';
  E.TsNs = nowNs();
  E.Tid = threadLane();
  record(std::move(E));
}

std::size_t obs::traceEventCount() {
  TraceBuffer &B = buffer();
  std::lock_guard<std::mutex> L(B.Mu);
  return B.Events.size();
}

std::vector<TraceEvent> obs::traceEvents() {
  TraceBuffer &B = buffer();
  std::lock_guard<std::mutex> L(B.Mu);
  return std::vector<TraceEvent>(B.Events.begin(), B.Events.end());
}

void obs::traceReset() {
  TraceBuffer &B = buffer();
  std::lock_guard<std::mutex> L(B.Mu);
  B.Events.clear();
  B.Dropped = 0;
}

void obs::traceSetCapacity(std::size_t Cap) {
  TraceBuffer &B = buffer();
  std::uint64_t Dropped;
  {
    std::lock_guard<std::mutex> L(B.Mu);
    B.Cap = Cap == 0 ? 1 : Cap;
    Dropped = B.enforceCap();
  }
  if (Dropped)
    counterAdd("obs.trace_dropped", Dropped);
}

std::uint64_t obs::traceDropped() {
  TraceBuffer &B = buffer();
  std::lock_guard<std::mutex> L(B.Mu);
  return B.Dropped;
}

bool obs::flushTrace() {
  std::string Path = traceFilePath();
  if (Path.empty())
    return false;
  return writeChromeTrace(Path);
}

std::string obs::chromeTraceJson() {
  std::vector<TraceEvent> Events = traceEvents();
  std::string Out = "{\"traceEvents\": [";
  for (std::size_t I = 0; I != Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    char Buf[160];
    // Chrome's ts/dur are microseconds (floats allowed).
    std::snprintf(Buf, sizeof(Buf),
                  "\"ph\": \"%c\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %llu",
                  E.Ph, static_cast<double>(E.TsNs) / 1000.0,
                  static_cast<double>(E.DurNs) / 1000.0,
                  static_cast<unsigned long long>(E.Tid));
    Out += I == 0 ? "\n" : ",\n";
    Out += "  {\"name\": \"" + jsonEscape(E.Name) + "\", \"cat\": \"" +
           jsonEscape(E.Cat) + "\", " + Buf;
    if (E.Ph == 'i')
      Out += ", \"s\": \"t\"";
    Out += "}";
  }
  Out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool obs::writeChromeTrace(const std::string &Path) {
  // An empty buffer writes nothing: a disabled run must leave no file
  // behind (a tested property), and an accidental overwrite of a real
  // trace with an empty one helps nobody.
  if (traceEventCount() == 0)
    return false;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Json = chromeTraceJson();
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  return std::fclose(F) == 0 && Ok;
}

std::string obs::traceFilePath() { return exitDumper().Path; }
