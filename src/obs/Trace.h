//===- obs/Trace.h - Span traces in Chrome trace_event form ----*- C++ -*-===//
//
// Part of ccal, a C++ reproduction of "Certified Concurrent Abstraction
// Layers" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Span-based tracing.  A Span is an RAII scope that records one complete
/// ("ph":"X") event — name, category, microsecond start and duration,
/// thread id — into a process-wide buffer; instants record "ph":"i"
/// marks.  The buffer exports as Chrome `trace_event` JSON
/// (chrome://tracing, Perfetto, speedscope all load it) so a compilation
/// or exploration run can be inspected pass by pass.
///
/// The CompCertX pipeline annotates parse → typecheck → codegen →
/// optimize → link → validate; the Explorer annotates each exploration;
/// the refinement checkers annotate their spec and impl sweeps.  A Span
/// also feeds the timer metric of the same name, so one annotation yields
/// both the trace and the aggregate.
///
/// Enablement follows obs::enabled() (see obs/Metrics.h).  When
/// `CCAL_TRACE` names a file (any value other than "" / "0" / "1"), the
/// buffer is flushed there at process exit; `CCAL_TRACE=1` enables
/// recording without the exit dump.  Disabled mode writes no file and
/// buffers nothing.
///
/// The buffer is a BOUNDED RING (default 65536 events, `CCAL_TRACE_MAX`
/// or traceSetCapacity override): a long-lived process — the certd
/// daemon traces every job — must not grow its trace without bound.  At
/// capacity the oldest event is dropped and `obs.trace_dropped` counts
/// it, so the exported trace is always the most recent window.  The
/// atexit dump also never fires for a daemon killed by signal, so
/// flushTrace() exposes the dump explicitly — certd calls it from its
/// graceful-shutdown path (including the SIGTERM one).
///
//===----------------------------------------------------------------------===//

#ifndef CCAL_OBS_TRACE_H
#define CCAL_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccal {
namespace obs {

/// One buffered trace event.
struct TraceEvent {
  std::string Name;
  std::string Cat;
  char Ph = 'X';        ///< 'X' = complete span, 'i' = instant
  std::uint64_t TsNs = 0;  ///< start, ns since process start
  std::uint64_t DurNs = 0; ///< span duration ('X' only)
  std::uint64_t Tid = 0;   ///< small stable id per OS thread
};

/// RAII span: records a complete event (and the same-named timer metric)
/// for the enclosed scope.  No-op when disabled at construction.
class Span {
public:
  Span(const char *Name, const char *Cat);
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  const char *Cat;
  std::uint64_t StartNs; ///< 0 = disabled at construction
};

/// Records an instant event.
void traceInstant(const std::string &Name, const char *Cat);

/// Number of buffered events (0 while disabled).
std::size_t traceEventCount();

/// Copies the buffered events (tests inspect them).
std::vector<TraceEvent> traceEvents();

/// Drops all buffered events (and the buffer's dropped tally).
void traceReset();

/// Default ring capacity (events).
constexpr std::size_t TraceDefaultCapacity = 1u << 16;

/// Caps the ring at \p Cap events (>= 1); when the buffer already holds
/// more, the oldest overflow is dropped immediately (and counted).
void traceSetCapacity(std::size_t Cap);

/// Events dropped (oldest-first) since the last traceReset; mirrored in
/// the `obs.trace_dropped` counter.
std::uint64_t traceDropped();

/// Writes the buffer to the CCAL_TRACE path now, without waiting for the
/// atexit hook — which never runs for a process killed by signal.  False
/// when no path is configured, the buffer is empty, or the write fails.
/// Safe to call repeatedly; each call rewrites the current window.
bool flushTrace();

/// The buffer as Chrome trace_event JSON:
/// {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":us,"dur":us,
///  "pid":1,"tid":n}, ...], "displayTimeUnit":"ms"}.
std::string chromeTraceJson();

/// Writes chromeTraceJson() to \p Path; false on I/O failure or when the
/// buffer is empty (no file is created — disabled runs leave no trace).
bool writeChromeTrace(const std::string &Path);

/// The file CCAL_TRACE asked the exit hook to write ("" when none).
std::string traceFilePath();

} // namespace obs
} // namespace ccal

#endif // CCAL_OBS_TRACE_H
