//===- bench/bench_explorer.cpp - Model-checking throughput ----------------------===//
//
// Measures the verification machinery itself: schedules and states
// explored per second on the Fig. 3 stack, full ticket-lock contextual
// refinement, and the Def 2.1 strategy-simulation checker — the
// "proof-checking speed" of the executable substitute for Coq.
//
//===----------------------------------------------------------------------===//

#include "compcertx/Linker.h"
#include "core/EnvContext.h"
#include "core/Simulation.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/Explorer.h"
#include "objects/TicketLock.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

using namespace ccal;

namespace {

MachineConfigPtr makeFig3Config() {
  static TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("P", R"(
      extern void acq();
      extern void rel();
      extern int f();
      extern int g();
      int t_main() {
        acq();
        int a = f();
        int b = g();
        rel();
        return a * 10 + b;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  static ClightModule Ticket = cloneModule(Layers.M1);
  static AsmProgramPtr Prog =
      compileAndLink("fig3.lasm", {&Client, &Ticket});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "fig3";
  Cfg->Layer = Layers.L0;
  Cfg->Program = Prog;
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

void exploreFig3(benchmark::State &State) {
  MachineConfigPtr Cfg = makeFig3Config();
  std::uint64_t Schedules = 0, States = 0;
  for (auto _ : State) {
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 256;
    ExploreResult Res = exploreMachine(Cfg, Opts);
    benchmark::DoNotOptimize(Res.SchedulesExplored);
    Schedules += Res.SchedulesExplored;
    States += Res.StatesExplored;
  }
  State.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(Schedules), benchmark::Counter::kIsRate);
  State.counters["states/s"] = benchmark::Counter(
      static_cast<double>(States), benchmark::Counter::kIsRate);
}
BENCHMARK(exploreFig3)->Name("Explorer/fig3_all_schedules")
    ->Unit(benchmark::kMillisecond);

void certifyTicket(benchmark::State &State) {
  std::uint64_t Obligations = 0;
  for (auto _ : State) {
    HarnessOutcome Out = certifyTicketLock(2);
    benchmark::DoNotOptimize(Out.Report.Holds);
    Obligations += Out.Report.ObligationsChecked;
  }
  State.counters["obligations/s"] = benchmark::Counter(
      static_cast<double>(Obligations), benchmark::Counter::kIsRate);
}
BENCHMARK(certifyTicket)->Name("Refinement/ticket_lock_full")
    ->Unit(benchmark::kMillisecond);

/// Ablation: how the fairness bound (the finite stand-in for the paper's
/// fair-scheduler assumption) scales the schedule space — the knob that
/// trades verification coverage against wall-clock.
void fairnessAblation(benchmark::State &State) {
  MachineConfigPtr Cfg = makeFig3Config();
  std::uint64_t Schedules = 0;
  for (auto _ : State) {
    ExploreOptions Opts;
    Opts.FairnessBound = static_cast<unsigned>(State.range(0));
    Opts.MaxSteps = 512;
    ExploreResult Res = exploreMachine(Cfg, Opts);
    benchmark::DoNotOptimize(Res.Ok);
    Schedules += Res.SchedulesExplored;
  }
  State.counters["schedules"] = benchmark::Counter(
      static_cast<double>(Schedules) /
      static_cast<double>(State.iterations()));
}
BENCHMARK(fairnessAblation)
    ->Name("Explorer/fairness_ablation")
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// Workload for the parallel-scaling runs: 4 CPUs each taking the ticket
/// lock 3 times, over the *atomic* L1 layer (blocking acq — no spinning,
/// so the schedule space is finite under any fairness bound; the L0 spin
/// implementation diverges under consecutive-step fairness with 3+ CPUs).
MachineConfigPtr makeTicketSpecConfig(unsigned Cpus, unsigned Rounds) {
  static TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule Client = cloneModule(makeTicketClient());
  static AsmProgramPtr Prog = compileAndLink("tickspec.lasm", {&Client});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "tickspec";
  Cfg->Layer = Layers.L1;
  Cfg->Program = Prog;
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(
        C, std::vector<CpuWorkItem>(Rounds, CpuWorkItem{"t_main", {}}));
  return Cfg;
}

void exploreParallel(benchmark::State &State) {
  MachineConfigPtr Cfg = makeTicketSpecConfig(4, 2);
  std::uint64_t Schedules = 0, States = 0;
  for (auto _ : State) {
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 4096;
    Opts.Threads = static_cast<unsigned>(State.range(0));
    Opts.OnOutcome = [](const Outcome &) { return std::string(); };
    ExploreResult Res = exploreMachine(Cfg, Opts);
    benchmark::DoNotOptimize(Res.Ok);
    Schedules += Res.SchedulesExplored;
    States += Res.StatesExplored;
  }
  State.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(Schedules), benchmark::Counter::kIsRate);
  State.counters["states/s"] = benchmark::Counter(
      static_cast<double>(States), benchmark::Counter::kIsRate);
}
BENCHMARK(exploreParallel)
    ->Name("Explorer/parallel_scaling")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void strategySim(benchmark::State &State) {
  // The §2 Def 2.1 check under a scripted contended environment.
  std::uint64_t Obligations = 0;
  for (auto _ : State) {
    auto Impl = makeAtomicCallStrategy(1, "hold", {}, [](const Log &) {
      return std::optional<std::int64_t>(0);
    });
    auto Spec = makeAtomicCallStrategy(1, "acq", {}, [](const Log &) {
      return std::optional<std::int64_t>(0);
    });
    EventMap R("R1", [](const Event &E) -> std::optional<Event> {
      if (E.Kind == "hold")
        return Event(E.Tid, "acq");
      return E;
    });
    auto Env = makeNullEnv();
    SimReport Rep = checkStrategySimulation(*Impl, *Spec, R, *Env);
    benchmark::DoNotOptimize(Rep.Holds);
    Obligations += Rep.Obligations;
  }
  State.counters["obligations/s"] = benchmark::Counter(
      static_cast<double>(Obligations), benchmark::Counter::kIsRate);
}
BENCHMARK(strategySim)->Name("Simulation/def21_atomic");

/// Threads=1..N scaling sweep on the 4-CPU ticket-lock exploration,
/// written to BENCH_explorer.json before the google-benchmark suite runs.
/// The speedup column is honest: on a machine with a single hardware
/// thread the workers serialize and speedup stays ~1, which is why
/// hardware_threads is part of the record.
void emitScalingJson() {
  MachineConfigPtr Cfg = makeTicketSpecConfig(4, 3);
  unsigned Hw = std::thread::hardware_concurrency();
  std::vector<unsigned> ThreadCounts = {1, 2, 4};
  if (Hw > 4)
    ThreadCounts.push_back(Hw);

  std::FILE *F = std::fopen("BENCH_explorer.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot open BENCH_explorer.json\n");
    return;
  }
  std::fprintf(F, "{\n");
  std::fprintf(F, "  \"bench\": \"explorer_parallel_scaling\",\n");
  std::fprintf(F,
               "  \"workload\": \"ticket lock spec layer, 4 CPUs x 3 "
               "rounds, FairnessBound=2\",\n");
  std::fprintf(F, "  \"hardware_threads\": %u,\n", Hw);
  std::fprintf(F, "  \"runs\": [\n");
  double Baseline = 0.0;
  for (size_t I = 0; I != ThreadCounts.size(); ++I) {
    unsigned T = ThreadCounts[I];
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 4096;
    Opts.Threads = T;
    Opts.OnOutcome = [](const Outcome &) { return std::string(); };
    auto Start = std::chrono::steady_clock::now();
    ExploreResult Res = exploreMachine(Cfg, Opts);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    if (T == 1)
      Baseline = Secs;
    std::fprintf(F,
                 "    {\"threads\": %u, \"seconds\": %.3f, \"schedules\": "
                 "%llu, \"states\": %llu, \"ok\": %s, \"speedup\": "
                 "%.2f}%s\n",
                 T, Secs,
                 static_cast<unsigned long long>(Res.SchedulesExplored),
                 static_cast<unsigned long long>(Res.StatesExplored),
                 Res.Ok ? "true" : "false",
                 Secs > 0.0 ? Baseline / Secs : 0.0,
                 I + 1 != ThreadCounts.size() ? "," : "");
    std::fprintf(stderr,
                 "explorer scaling: threads=%u %.3fs schedules=%llu\n", T,
                 Secs,
                 static_cast<unsigned long long>(Res.SchedulesExplored));
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  emitScalingJson();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
