//===- bench/bench_explorer.cpp - Model-checking throughput ----------------------===//
//
// Measures the verification machinery itself: schedules and states
// explored per second on the Fig. 3 stack, full ticket-lock contextual
// refinement, and the Def 2.1 strategy-simulation checker — the
// "proof-checking speed" of the executable substitute for Coq.
//
//===----------------------------------------------------------------------===//

#include "cert/CertStore.h"
#include "compcertx/Linker.h"
#include "core/EnvContext.h"
#include "core/Simulation.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/CpuLocal.h"
#include "machine/Explorer.h"
#include "machine/MemoryModel.h"
#include "machine/Soundness.h"
#include "objects/McsLock.h"
#include "objects/ObjectSpec.h"
#include "objects/TicketLock.h"
#include "obs/Metrics.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

using namespace ccal;

namespace {

MachineConfigPtr makeFig3Config() {
  static TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("P", R"(
      extern void acq();
      extern void rel();
      extern int f();
      extern int g();
      int t_main() {
        acq();
        int a = f();
        int b = g();
        rel();
        return a * 10 + b;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  static ClightModule Ticket = cloneModule(Layers.M1);
  static AsmProgramPtr Prog =
      compileAndLink("fig3.lasm", {&Client, &Ticket});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "fig3";
  Cfg->Layer = Layers.L0;
  Cfg->Program = Prog;
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

void exploreFig3(benchmark::State &State) {
  MachineConfigPtr Cfg = makeFig3Config();
  std::uint64_t Schedules = 0, States = 0;
  for (auto _ : State) {
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 256;
    ExploreResult Res = exploreMachine(Cfg, Opts);
    benchmark::DoNotOptimize(Res.SchedulesExplored);
    Schedules += Res.SchedulesExplored;
    States += Res.StatesExplored;
  }
  State.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(Schedules), benchmark::Counter::kIsRate);
  State.counters["states/s"] = benchmark::Counter(
      static_cast<double>(States), benchmark::Counter::kIsRate);
}
BENCHMARK(exploreFig3)->Name("Explorer/fig3_all_schedules")
    ->Unit(benchmark::kMillisecond);

void certifyTicket(benchmark::State &State) {
  std::uint64_t Obligations = 0;
  for (auto _ : State) {
    HarnessOutcome Out = certifyTicketLock(2);
    benchmark::DoNotOptimize(Out.Report.Holds);
    Obligations += Out.Report.ObligationsChecked;
  }
  State.counters["obligations/s"] = benchmark::Counter(
      static_cast<double>(Obligations), benchmark::Counter::kIsRate);
}
BENCHMARK(certifyTicket)->Name("Refinement/ticket_lock_full")
    ->Unit(benchmark::kMillisecond);

/// The same full contextual refinement with the implementation machine
/// under RaMemory — the per-schedule cost of reads-from enumeration on a
/// correctly annotated lock (whose acquire joins collapse most menus).
void certifyTicketRa(benchmark::State &State) {
  std::uint64_t Obligations = 0;
  for (auto _ : State) {
    HarnessOutcome Out = certifyTicketLockRa(2);
    benchmark::DoNotOptimize(Out.Report.Holds);
    Obligations += Out.Report.ObligationsChecked;
  }
  State.counters["obligations/s"] = benchmark::Counter(
      static_cast<double>(Obligations), benchmark::Counter::kIsRate);
}
BENCHMARK(certifyTicketRa)->Name("Refinement/ticket_lock_ra_full")
    ->Unit(benchmark::kMillisecond);

/// Ablation: how the fairness bound (the finite stand-in for the paper's
/// fair-scheduler assumption) scales the schedule space — the knob that
/// trades verification coverage against wall-clock.
void fairnessAblation(benchmark::State &State) {
  MachineConfigPtr Cfg = makeFig3Config();
  std::uint64_t Schedules = 0;
  for (auto _ : State) {
    ExploreOptions Opts;
    Opts.FairnessBound = static_cast<unsigned>(State.range(0));
    Opts.MaxSteps = 512;
    ExploreResult Res = exploreMachine(Cfg, Opts);
    benchmark::DoNotOptimize(Res.Ok);
    Schedules += Res.SchedulesExplored;
  }
  State.counters["schedules"] = benchmark::Counter(
      static_cast<double>(Schedules) /
      static_cast<double>(State.iterations()));
}
BENCHMARK(fairnessAblation)
    ->Name("Explorer/fairness_ablation")
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// Workload for the parallel-scaling runs: 4 CPUs each taking the ticket
/// lock 3 times, over the *atomic* L1 layer (blocking acq — no spinning,
/// so the schedule space is finite under any fairness bound; the L0 spin
/// implementation diverges under consecutive-step fairness with 3+ CPUs).
/// Fully independent workload for the POR ablation: each CPU bumps its
/// own counter through its own primitive with honestly disjoint declared
/// footprints, so the whole schedule space is one Mazurkiewicz trace.
MachineConfigPtr makeIndependentCountersConfig() {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int tick1();
      extern int tick2();
      extern int tick3();
      int t1() { tick1(); tick1(); return 0; }
      int t2() { tick2(); tick2(); return 0; }
      int t3() { tick3(); tick3(); return 0; }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  static LayerPtr L = []() -> LayerPtr {
    auto I = makeInterface("Lindep");
    I->addShared("tick1", makeFetchIncPrim("tick1"),
                 Footprint::of({"c1"}, {"c1"}));
    I->addShared("tick2", makeFetchIncPrim("tick2"),
                 Footprint::of({"c2"}, {"c2"}));
    I->addShared("tick3", makeFetchIncPrim("tick3"),
                 Footprint::of({"c3"}, {"c3"}));
    return I;
  }();
  static AsmProgramPtr Prog = compileAndLink("indep.lasm", {&Client});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "indep";
  Cfg->Layer = L;
  Cfg->Program = Prog;
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t1", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t2", {}}});
  Cfg->Work.emplace(3, std::vector<CpuWorkItem>{{"t3", {}}});
  return Cfg;
}

MachineConfigPtr makeTicketSpecConfig(unsigned Cpus, unsigned Rounds) {
  static TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule Client = cloneModule(makeTicketClient());
  static AsmProgramPtr Prog = compileAndLink("tickspec.lasm", {&Client});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "tickspec";
  Cfg->Layer = Layers.L1;
  Cfg->Program = Prog;
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(
        C, std::vector<CpuWorkItem>(Rounds, CpuWorkItem{"t_main", {}}));
  return Cfg;
}

/// The mixed workload source-set DPOR is FOR: the atomic ticket-lock L1
/// layer extended with one private counter per CPU (honestly disjoint
/// footprints), each CPU doing local work before its critical section.
/// The pure L1 row is schedule-irreducible — every pair of lock events
/// conflicts, so sleep sets and DPOR both report 1.00x there.  Here the
/// local ticks commute across CPUs while the lock section stays ordered,
/// and the reduction (>=2x schedules) comes entirely from the race-driven
/// backtracking: static sleep sets alone cannot skip a first-sibling.
MachineConfigPtr makeTicketMixedConfig(unsigned Cpus) {
  static LayerPtr L = []() -> LayerPtr {
    // The L1 atomic-lock interface rebuilt fresh (the shared TicketLock
    // L1 is immutable) plus the per-CPU counters.
    auto I = makeInterface("L1mixed");
    addAtomicLock(*I, "acq", "rel");
    I->addShared("f", makeFetchIncPrim("f"), Footprint::of({"f"}, {"f"}));
    for (unsigned C = 1; C <= 3; ++C) {
      // Prim name == counter name == event kind, so the equivalence
      // checker's log canonicalization sees the same footprint the
      // runtime DPOR used.
      std::string V = "tick" + std::to_string(C);
      I->addShared(V, makeFetchIncPrim(V), Footprint::of({V}, {V}));
    }
    return I;
  }();
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("P_mixed", R"(
      extern void acq();
      extern void rel();
      extern int f();
      extern int tick1();
      extern int tick2();
      extern int tick3();
      int t1() { tick1(); tick1(); acq(); int a = f(); rel(); return a; }
      int t2() { tick2(); tick2(); acq(); int a = f(); rel(); return a; }
      int t3() { tick3(); tick3(); acq(); int a = f(); rel(); return a; }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  static AsmProgramPtr Prog = compileAndLink("tickmixed.lasm", {&Client});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "tickmixed";
  Cfg->Layer = L;
  Cfg->Program = Prog;
  for (ThreadId C = 1; C <= Cpus && C <= 3; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{
                             {"t" + std::to_string(C), {}}});
  return Cfg;
}

void exploreParallel(benchmark::State &State) {
  MachineConfigPtr Cfg = makeTicketSpecConfig(4, 2);
  std::uint64_t Schedules = 0, States = 0;
  for (auto _ : State) {
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 4096;
    Opts.Threads = static_cast<unsigned>(State.range(0));
    Opts.OnOutcome = [](const Outcome &) { return std::string(); };
    ExploreResult Res = exploreMachine(Cfg, Opts);
    benchmark::DoNotOptimize(Res.Ok);
    Schedules += Res.SchedulesExplored;
    States += Res.StatesExplored;
  }
  State.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(Schedules), benchmark::Counter::kIsRate);
  State.counters["states/s"] = benchmark::Counter(
      static_cast<double>(States), benchmark::Counter::kIsRate);
}
BENCHMARK(exploreParallel)
    ->Name("Explorer/parallel_scaling")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void strategySim(benchmark::State &State) {
  // The §2 Def 2.1 check under a scripted contended environment.
  std::uint64_t Obligations = 0;
  for (auto _ : State) {
    auto Impl = makeAtomicCallStrategy(1, "hold", {}, [](const Log &) {
      return std::optional<std::int64_t>(0);
    });
    auto Spec = makeAtomicCallStrategy(1, "acq", {}, [](const Log &) {
      return std::optional<std::int64_t>(0);
    });
    EventMap R("R1", [](const Event &E) -> std::optional<Event> {
      if (E.Kind == "hold")
        return Event(E.Tid, "acq");
      return E;
    });
    auto Env = makeNullEnv();
    SimReport Rep = checkStrategySimulation(*Impl, *Spec, R, *Env);
    benchmark::DoNotOptimize(Rep.Holds);
    Obligations += Rep.Obligations;
  }
  State.counters["obligations/s"] = benchmark::Counter(
      static_cast<double>(Obligations), benchmark::Counter::kIsRate);
}
BENCHMARK(strategySim)->Name("Simulation/def21_atomic");

/// One row of the POR-off/POR-on ablation, with the obs-registry view of
/// the same run alongside the report's own numbers (the two must agree —
/// PorTest asserts it; the bench records both so divergence is visible).
struct PorAblationRow {
  std::string Workload;
  PorEquivalenceReport R;
  std::uint64_t RegSleepSkips = 0;
  std::uint64_t RegCacheHits = 0;
  std::uint64_t RegSteals = 0;
  std::uint64_t RegBacktracks = 0;
};

/// Runs checkPorEquivalence (full exploration vs sleep-set reduction,
/// same trace space, deduplicated-outcome-set equality) on three
/// workloads spanning the independence spectrum: fully independent
/// counters (maximal reduction), the concrete Fig. 3 ticket-lock stack
/// (mixed), and the contended atomic spec layer (little to reduce — the
/// honest row).
std::vector<PorAblationRow> runPorAblation() {
  std::vector<PorAblationRow> Rows;
  // Sourcing the POR-prune/cache-hit/steal columns from the metrics
  // registry (rather than copying the report fields) keeps the registry
  // honest: a publishing bug shows up as a bench-row mismatch.
  bool WasEnabled = obs::enabled();
  obs::setEnabled(true);
  auto RunRow = [&](const std::string &Workload, MachineConfigPtr Cfg,
                    const ExploreOptions &Opts) {
    obs::metricsReset();
    PorAblationRow Row;
    Row.Workload = Workload;
    Row.R = checkPorEquivalence(std::move(Cfg), Opts);
    Row.RegSleepSkips = obs::counterValue("explorer.sleep_skips");
    Row.RegCacheHits = obs::counterValue("explorer.cache_hits");
    Row.RegSteals = obs::counterValue("explorer.steals");
    Row.RegBacktracks = obs::counterValue("dpor.backtracks");
    Rows.push_back(std::move(Row));
  };
  {
    ExploreOptions Opts;
    RunRow("indep-counters, 3 CPUs x 2 disjoint ticks",
           makeIndependentCountersConfig(), Opts);
  }
  {
    // FairnessBound is linearization-dependent and is cleared by the
    // differential check; the spinning L0 acq is bounded by the
    // trace-invariant per-CPU step cap instead.
    ExploreOptions Opts;
    Opts.MaxParticipantSteps = 10;
    Opts.MaxSteps = 256;
    RunRow("fig3 ticket-lock L0, 2 CPUs, MaxParticipantSteps=10",
           makeFig3Config(), Opts);
  }
  {
    ExploreOptions Opts;
    Opts.MaxSteps = 4096;
    RunRow("ticket spec layer L1, 3 CPUs x 1 round",
           makeTicketSpecConfig(3, 1), Opts);
  }
  {
    // The headline DPOR row: lock contention plus commuting per-CPU
    // local work.  Sleep sets alone left this class at 1.00x (a first
    // sibling is never asleep); the race-driven backtracking collapses
    // the commuting tick interleavings.
    ExploreOptions Opts;
    Opts.MaxSteps = 4096;
    RunRow("ticket L1 + per-CPU local work, 3 CPUs",
           makeTicketMixedConfig(3), Opts);
  }
  obs::metricsReset();
  obs::setEnabled(WasEnabled);
  for (const PorAblationRow &Row : Rows)
    std::fprintf(stderr,
                 "por ablation: %-50s full=%llu por=%llu (%.1fx) "
                 "states=%llu/%llu backtracks=%llu "
                 "outcomes=%llu/%llu match=%s\n",
                 Row.Workload.c_str(),
                 static_cast<unsigned long long>(Row.R.FullSchedules),
                 static_cast<unsigned long long>(Row.R.PorSchedules),
                 Row.R.PorSchedules
                     ? static_cast<double>(Row.R.FullSchedules) /
                           static_cast<double>(Row.R.PorSchedules)
                     : 0.0,
                 static_cast<unsigned long long>(Row.R.FullStates),
                 static_cast<unsigned long long>(Row.R.PorStates),
                 static_cast<unsigned long long>(Row.R.Backtracks),
                 static_cast<unsigned long long>(Row.R.FullOutcomes),
                 static_cast<unsigned long long>(Row.R.PorOutcomes),
                 Row.R.Ok && Row.R.Match ? "true" : "false");
  return Rows;
}

void emitPorJson(std::FILE *F, const std::vector<PorAblationRow> &Rows) {
  std::fprintf(F, "  \"por\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const PorAblationRow &Row = Rows[I];
    std::fprintf(
        F,
        "    {\"workload\": \"%s\", \"schedules_full\": %llu, "
        "\"schedules_por\": %llu, \"reduction\": %.2f, "
        "\"states_full\": %llu, \"states_por\": %llu, "
        "\"backtracks\": %llu, "
        "\"sleep_skips\": %llu, \"outcomes_full\": %llu, "
        "\"outcomes_por\": %llu, \"match\": %s, "
        "\"registry_sleep_skips\": %llu, \"registry_cache_hits\": %llu, "
        "\"registry_steals\": %llu, \"registry_backtracks\": %llu}%s\n",
        Row.Workload.c_str(),
        static_cast<unsigned long long>(Row.R.FullSchedules),
        static_cast<unsigned long long>(Row.R.PorSchedules),
        Row.R.PorSchedules
            ? static_cast<double>(Row.R.FullSchedules) /
                  static_cast<double>(Row.R.PorSchedules)
            : 0.0,
        static_cast<unsigned long long>(Row.R.FullStates),
        static_cast<unsigned long long>(Row.R.PorStates),
        static_cast<unsigned long long>(Row.R.Backtracks),
        static_cast<unsigned long long>(Row.R.SleepSkips),
        static_cast<unsigned long long>(Row.R.FullOutcomes),
        static_cast<unsigned long long>(Row.R.PorOutcomes),
        Row.R.Ok && Row.R.Match ? "true" : "false",
        static_cast<unsigned long long>(Row.RegSleepSkips),
        static_cast<unsigned long long>(Row.RegCacheHits),
        static_cast<unsigned long long>(Row.RegSteals),
        static_cast<unsigned long long>(Row.RegBacktracks),
        I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n");
}

/// Snapshot-convergent workload for the bounded-StateCache rows: silent
/// shared nops emit no events, so interleavings reconverge on identical
/// machine snapshots — the dedup cache's best case, and the workload that
/// actually exercises eviction and spill under a byte budget.
MachineConfigPtr makeNopGridConfig(unsigned Cpus, unsigned Nops) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int nop();
      int t_main(int k) {
        int i = 0;
        while (i < k) {
          nop();
          i = i + 1;
        }
        return 0;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  static LayerPtr L = [] {
    auto I = makeInterface("Lnopgrid");
    I->addShared("nop", makeConstPrim(0));
    return I;
  }();
  static AsmProgramPtr Prog = compileAndLink("nopgrid.lasm", {&Client});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "nopgrid";
  Cfg->Layer = L;
  Cfg->Program = Prog;
  for (ThreadId C = 1; C <= Cpus; ++C)
    Cfg->Work.emplace(C, std::vector<CpuWorkItem>{
                             {"t_main", {static_cast<std::int64_t>(Nops)}}});
  return Cfg;
}

/// The bounded-StateCache ablation: the same convergent workload explored
/// uncached, with an unbounded cache, under a tight byte budget, and
/// under the budget with disk spill — states/evictions/spill-hit columns
/// show what each knob trades.  Outcome counts must agree across all
/// four rows (the cache prunes revisits, never outcomes).
void emitStateCacheJson(std::FILE *F) {
  namespace fs = std::filesystem;
  fs::path SpillDir = fs::temp_directory_path() / "ccal_bench_spill";
  std::error_code Ec;
  fs::remove_all(SpillDir, Ec);

  MachineConfigPtr Cfg = makeNopGridConfig(3, 3);
  struct Mode {
    const char *Name;
    bool Cache;
    std::size_t Budget;
    bool Spill;
  };
  const Mode Modes[] = {{"uncached", false, 0, false},
                        {"unbounded", true, 0, false},
                        {"budget_16k", true, 16384, false},
                        {"budget_16k_spill", true, 16384, true}};
  std::fprintf(F, "  \"state_cache\": [\n");
  for (size_t I = 0; I != std::size(Modes); ++I) {
    const Mode &M = Modes[I];
    ExploreOptions Opts;
    Opts.StateCache = M.Cache;
    Opts.CacheBudgetBytes = M.Budget;
    if (M.Spill)
      Opts.CacheSpillDir = SpillDir.string();
    auto Start = std::chrono::steady_clock::now();
    ExploreResult Res = exploreMachine(Cfg, Opts);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    std::fprintf(
        F,
        "    {\"mode\": \"%s\", \"seconds\": %.4f, \"states\": %llu, "
        "\"outcomes\": %llu, \"cache_hits\": %llu, \"evictions\": %llu, "
        "\"spill_hits\": %llu, \"ok\": %s}%s\n",
        M.Name, Secs, static_cast<unsigned long long>(Res.StatesExplored),
        static_cast<unsigned long long>(Res.Outcomes.size()),
        static_cast<unsigned long long>(Res.CacheHits),
        static_cast<unsigned long long>(Res.CacheEvictions),
        static_cast<unsigned long long>(Res.CacheSpillHits),
        Res.Ok && Res.Complete ? "true" : "false",
        I + 1 != std::size(Modes) ? "," : "");
    std::fprintf(stderr,
                 "state cache: %-18s states=%llu hits=%llu evictions=%llu "
                 "spill_hits=%llu\n",
                 M.Name, static_cast<unsigned long long>(Res.StatesExplored),
                 static_cast<unsigned long long>(Res.CacheHits),
                 static_cast<unsigned long long>(Res.CacheEvictions),
                 static_cast<unsigned long long>(Res.CacheSpillHits));
  }
  std::fprintf(F, "  ],\n");
  fs::remove_all(SpillDir, Ec);
}

/// Maximal-branching workload for the release/acquire rows: a torn
/// relaxed counter two CPUs bump twice each, so every read has a real
/// reads-from menu over the location's modification order.  The
/// annotated lock rows below show the other end of the spectrum — the
/// acquire joins collapse their menus back toward one.
MachineConfigPtr makeRelaxedCounterConfig(MemoryModelPtr Model) {
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("c", R"(
      extern int bump();
      int t_main() { bump(); return bump(); }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  static AsmProgramPtr Prog = compileAndLink("rabump.lasm", {&Client});
  auto L = makeInterface("Lrabump");
  L->addShared("bump", makeFetchIncPrim("bump"),
               Footprint::of({"b"}, {"b"})
                   .withOrders(MemOrder::Relaxed, MemOrder::Relaxed)
                   .nonAtomic());
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "rabump";
  Cfg->Layer = L;
  Cfg->Program = Prog;
  Cfg->Model = std::move(Model);
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

/// Release/acquire rows: throughput and reads-from branching factor of
/// the weak backend on the relaxed counter (real stale-read menus) and on
/// the annotated RA ticket/MCS lock machines; the broken-grab twin rides
/// along as the refutation row (ok=false IS its datum).  POR reduction
/// under RaMemory comes from the same differential checker as the SC
/// ablation, so the reduction is certified equal-outcome, not just fast.
void emitRaJson(std::FILE *F) {
  struct RaRow {
    std::string Workload;
    double Secs = 0.0;
    ExploreResult Res;
  };
  std::vector<RaRow> Rows;
  auto Run = [&Rows](std::string Workload, MachineConfigPtr Cfg,
                     const ExploreOptions &Opts) {
    RaRow Row;
    Row.Workload = std::move(Workload);
    auto Start = std::chrono::steady_clock::now();
    Row.Res = exploreMachine(std::move(Cfg), Opts);
    Row.Secs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
    Rows.push_back(std::move(Row));
  };
  {
    ExploreOptions Opts;
    Opts.FairnessBound = 1u << 20; // no spinning in this workload
    Opts.MaxSteps = 256;
    Run("relaxed counter, 2 CPUs x 2 bumps, RaMemory",
        makeRelaxedCounterConfig(raMemory()), Opts);
  }
  {
    ObjectHarness H = makeTicketLockHarnessRa(2, 1);
    Run("ticket lock L0 RA, 2 CPUs x 1 round", H.implConfig(), H.ImplOpts);
  }
  {
    ObjectHarness H = makeTicketLockHarnessRa(2, 1, /*BrokenGrab=*/true);
    Run("ticket lock L0 RA broken grab (must be refuted)", H.implConfig(),
        H.ImplOpts);
  }
  {
    ObjectHarness H = makeMcsLockHarnessRa(2, 1);
    Run("mcs lock L0 RA, 2 CPUs x 1 round", H.implConfig(), H.ImplOpts);
  }

  std::fprintf(F, "  \"ra\": {\n    \"runs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RaRow &Row = Rows[I];
    double Branching =
        Row.Res.ReadsFromBranchPoints
            ? static_cast<double>(Row.Res.ReadsFromVariants) /
                  static_cast<double>(Row.Res.ReadsFromBranchPoints)
            : 1.0;
    std::fprintf(
        F,
        "      {\"workload\": \"%s\", \"seconds\": %.4f, \"schedules\": "
        "%llu, \"states\": %llu, \"states_per_sec\": %.0f, \"outcomes\": "
        "%llu, \"rf_branch_points\": %llu, \"rf_variants\": %llu, "
        "\"rf_branching\": %.2f, \"ok\": %s}%s\n",
        Row.Workload.c_str(), Row.Secs,
        static_cast<unsigned long long>(Row.Res.SchedulesExplored),
        static_cast<unsigned long long>(Row.Res.StatesExplored),
        Row.Secs > 0.0
            ? static_cast<double>(Row.Res.StatesExplored) / Row.Secs
            : 0.0,
        static_cast<unsigned long long>(Row.Res.Outcomes.size()),
        static_cast<unsigned long long>(Row.Res.ReadsFromBranchPoints),
        static_cast<unsigned long long>(Row.Res.ReadsFromVariants),
        Branching, Row.Res.Ok ? "true" : "false",
        I + 1 != Rows.size() ? "," : "");
    std::fprintf(stderr,
                 "ra explore: %-45s schedules=%llu states=%llu "
                 "rf_branching=%.2f ok=%s\n",
                 Row.Workload.c_str(),
                 static_cast<unsigned long long>(Row.Res.SchedulesExplored),
                 static_cast<unsigned long long>(Row.Res.StatesExplored),
                 Branching, Row.Res.Ok ? "true" : "false");
  }
  std::fprintf(F, "    ],\n");

  PorEquivalenceReport Por =
      checkPorEquivalence(makeRelaxedCounterConfig(raMemory()),
                          ExploreOptions());
  std::fprintf(
      F,
      "    \"por\": {\"workload\": \"relaxed counter, 2 CPUs x 2 bumps, "
      "RaMemory\", \"schedules_full\": %llu, \"schedules_por\": %llu, "
      "\"reduction\": %.2f, \"outcomes_full\": %llu, \"outcomes_por\": "
      "%llu, \"match\": %s}\n  },\n",
      static_cast<unsigned long long>(Por.FullSchedules),
      static_cast<unsigned long long>(Por.PorSchedules),
      Por.PorSchedules ? static_cast<double>(Por.FullSchedules) /
                             static_cast<double>(Por.PorSchedules)
                       : 0.0,
      static_cast<unsigned long long>(Por.FullOutcomes),
      static_cast<unsigned long long>(Por.PorOutcomes),
      Por.Ok && Por.Match ? "true" : "false");
  std::fprintf(stderr,
               "ra por ablation: full=%llu por=%llu (%.1fx) match=%s\n",
               static_cast<unsigned long long>(Por.FullSchedules),
               static_cast<unsigned long long>(Por.PorSchedules),
               Por.PorSchedules ? static_cast<double>(Por.FullSchedules) /
                                      static_cast<double>(Por.PorSchedules)
                                : 0.0,
               Por.Ok && Por.Match ? "true" : "false");
}

/// Cold-vs-warm timing of the certificate store on a full contextual
/// refinement: the cold run explores and persists, the warm run must serve
/// the identical report from disk.  The hit/miss counters come from the
/// obs registry so the row doubles as an end-to-end check that a warm run
/// really is one hit and zero misses.
void emitCertStoreJson(std::FILE *F) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "ccal_bench_cert_store";
  std::error_code Ec;
  fs::remove_all(Dir, Ec);

  auto RunOnce = [&] {
    auto Start = std::chrono::steady_clock::now();
    ContextualRefinementReport Rep = checkContextualRefinement(
        makeTicketSpecConfig(3, 1), makeTicketSpecConfig(3, 1),
        EventMap::identity(), ExploreOptions(), ExploreOptions());
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    return std::make_pair(Secs, Rep.Holds);
  };

  bool WasEnabled = obs::enabled();
  obs::setEnabled(true);
  obs::metricsReset();
  cert::setStoreDir(Dir.string());
  auto [SecsCold, ColdHolds] = RunOnce();
  auto [SecsWarm, WarmHolds] = RunOnce();
  std::uint64_t Hits = obs::counterValue("cert.hits");
  std::uint64_t Misses = obs::counterValue("cert.misses");
  cert::setStoreDir("");
  obs::metricsReset();
  obs::setEnabled(WasEnabled);
  fs::remove_all(Dir, Ec);

  std::fprintf(F,
               "  \"cert_store\": {\"workload\": \"ticket spec layer L1, 3 "
               "CPUs x 1 round, contextual refinement\", \"seconds_cold\": "
               "%.4f, \"seconds_warm\": %.4f, \"speedup\": %.2f, \"hits\": "
               "%llu, \"misses\": %llu, \"holds\": %s},\n",
               SecsCold, SecsWarm,
               SecsWarm > 0.0 ? SecsCold / SecsWarm : 0.0,
               static_cast<unsigned long long>(Hits),
               static_cast<unsigned long long>(Misses),
               ColdHolds && WarmHolds ? "true" : "false");
  std::fprintf(stderr,
               "cert store: cold=%.4fs warm=%.4fs (%.1fx) hits=%llu "
               "misses=%llu\n",
               SecsCold, SecsWarm,
               SecsWarm > 0.0 ? SecsCold / SecsWarm : 0.0,
               static_cast<unsigned long long>(Hits),
               static_cast<unsigned long long>(Misses));
}

/// Threads=1..N scaling sweep on the 4-CPU ticket-lock exploration,
/// written to BENCH_explorer.json before the google-benchmark suite runs.
/// The speedup column is honest: on a machine with a single hardware
/// thread the workers serialize and speedup stays ~1, which is why
/// hardware_threads is part of the record.
void emitScalingJson() {
  MachineConfigPtr Cfg = makeTicketSpecConfig(4, 3);
  unsigned Hw = std::thread::hardware_concurrency();
  std::vector<unsigned> ThreadCounts = {1, 2, 4};
  if (Hw > 4)
    ThreadCounts.push_back(Hw);

  std::FILE *F = std::fopen("BENCH_explorer.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot open BENCH_explorer.json\n");
    return;
  }
  std::fprintf(F, "{\n");
  std::fprintf(F, "  \"bench\": \"explorer_parallel_scaling\",\n");
  std::fprintf(F,
               "  \"workload\": \"ticket lock spec layer, 4 CPUs x 3 "
               "rounds, FairnessBound=2\",\n");
  std::fprintf(F, "  \"hardware_threads\": %u,\n", Hw);
  // Pre-refactor capture (std::string event kinds, flat std::vector<Event>
  // log, globally locked outcome recording) on the same workload, kept in
  // the artifact so states_per_sec and snapshot_bytes always show the
  // before/after pair.  snapshot_bytes_est: 21 events x ~64 B (string kind
  // + args vector + tid) plus the vector header, all deep-copied per
  // machine snapshot.
  std::fprintf(F,
               "  \"baseline_pre_refactor\": {\"threads\": 1, \"seconds\": "
               "2.044, \"schedules\": 50040, \"states\": 652961, "
               "\"states_per_sec\": 319452, \"snapshot_bytes_est\": 1368},\n");
  std::fprintf(F, "  \"runs\": [\n");
  // Counters in these rows come from the obs registry (metricsReset per
  // run, counterValue after), not from ExploreResult — the registry is the
  // artifact under test.
  bool WasEnabled = obs::enabled();
  obs::setEnabled(true);
  double Baseline = 0.0;
  for (size_t I = 0; I != ThreadCounts.size(); ++I) {
    unsigned T = ThreadCounts[I];
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 4096;
    Opts.Threads = T;
    Opts.OnOutcome = [](const Outcome &) { return std::string(); };
    obs::metricsReset();
    auto Start = std::chrono::steady_clock::now();
    ExploreResult Res = exploreMachine(Cfg, Opts);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    if (T == 1)
      Baseline = Secs;
    std::uint64_t CacheHits = obs::counterValue("explorer.cache_hits");
    std::uint64_t SleepSkips = obs::counterValue("explorer.sleep_skips");
    std::uint64_t Steals = obs::counterValue("explorer.steals");
    std::uint64_t Donations = obs::counterValue("explorer.donations");
    std::uint64_t StealBatches = obs::counterValue("steal.batches");
    std::uint64_t CacheEvictions = obs::counterValue("cache.evictions");
    // snapshot_bytes: bytes a machine-copy physically clones for a log of
    // this run's deepest length (sealed chunks are shared, only pointers
    // and the tail copy) — the quantity the chunked representation
    // optimizes, measured rather than estimated.
    Log Deepest;
    for (std::uint64_t E = 0; E != Res.MaxLogLen; ++E)
      Deepest.push_back(Event(1, "e"));
    std::fprintf(F,
                 "    {\"threads\": %u, \"seconds\": %.3f, \"schedules\": "
                 "%llu, \"states\": %llu, \"states_per_sec\": %.0f, "
                 "\"snapshot_bytes\": %llu, \"ok\": %s, \"speedup\": %.2f, "
                 "\"cache_hits\": %llu, \"sleep_skips\": %llu, "
                 "\"steals\": %llu, \"donations\": %llu, "
                 "\"steal_batches\": %llu, \"cache_evictions\": %llu}%s\n",
                 T, Secs,
                 static_cast<unsigned long long>(Res.SchedulesExplored),
                 static_cast<unsigned long long>(Res.StatesExplored),
                 Secs > 0.0 ? static_cast<double>(Res.StatesExplored) / Secs
                            : 0.0,
                 static_cast<unsigned long long>(Deepest.snapshotCopyBytes()),
                 Res.Ok ? "true" : "false",
                 Secs > 0.0 ? Baseline / Secs : 0.0,
                 static_cast<unsigned long long>(CacheHits),
                 static_cast<unsigned long long>(SleepSkips),
                 static_cast<unsigned long long>(Steals),
                 static_cast<unsigned long long>(Donations),
                 static_cast<unsigned long long>(StealBatches),
                 static_cast<unsigned long long>(CacheEvictions),
                 I + 1 != ThreadCounts.size() ? "," : "");
    std::fprintf(stderr,
                 "explorer scaling: threads=%u %.3fs schedules=%llu "
                 "cache_hits=%llu steals=%llu steal_batches=%llu\n",
                 T, Secs,
                 static_cast<unsigned long long>(Res.SchedulesExplored),
                 static_cast<unsigned long long>(CacheHits),
                 static_cast<unsigned long long>(Steals),
                 static_cast<unsigned long long>(StealBatches));
  }
  obs::metricsReset();
  obs::setEnabled(WasEnabled);
  std::fprintf(F, "  ],\n");
  emitStateCacheJson(F);
  emitCertStoreJson(F);
  emitRaJson(F);
  emitPorJson(F, runPorAblation());
  std::fprintf(F, "}\n");
  std::fclose(F);
}

} // namespace

int main(int argc, char **argv) {
  // Smoke mode for CI: run only the POR-off/POR-on ablation and gate on
  // the differential soundness check (exit non-zero if any workload's
  // deduplicated outcome sets diverge).
  for (int I = 1; I != argc; ++I)
    if (std::string(argv[I]) == "--por-ablation") {
      std::vector<PorAblationRow> Rows = runPorAblation();
      for (const PorAblationRow &Row : Rows)
        if (!Row.R.Ok || !Row.R.Match) {
          std::fprintf(stderr, "por ablation FAILED on %s: %s\n",
                       Row.Workload.c_str(), Row.R.Detail.c_str());
          return 1;
        }
      return 0;
    }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  emitScalingJson();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
