//===- bench/bench_explorer.cpp - Model-checking throughput ----------------------===//
//
// Measures the verification machinery itself: schedules and states
// explored per second on the Fig. 3 stack, full ticket-lock contextual
// refinement, and the Def 2.1 strategy-simulation checker — the
// "proof-checking speed" of the executable substitute for Coq.
//
//===----------------------------------------------------------------------===//

#include "compcertx/Linker.h"
#include "core/EnvContext.h"
#include "core/Simulation.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "machine/Explorer.h"
#include "objects/TicketLock.h"

#include <benchmark/benchmark.h>

using namespace ccal;

namespace {

MachineConfigPtr makeFig3Config() {
  static TicketLockLayers Layers = makeTicketLockLayers();
  static ClightModule Client = [] {
    ClightModule M = parseModuleOrDie("P", R"(
      extern void acq();
      extern void rel();
      extern int f();
      extern int g();
      int t_main() {
        acq();
        int a = f();
        int b = g();
        rel();
        return a * 10 + b;
      }
    )");
    typeCheckOrDie(M);
    return M;
  }();
  static ClightModule Ticket = cloneModule(Layers.M1);
  static AsmProgramPtr Prog =
      compileAndLink("fig3.lasm", {&Client, &Ticket});
  auto Cfg = std::make_shared<MachineConfig>();
  Cfg->Name = "fig3";
  Cfg->Layer = Layers.L0;
  Cfg->Program = Prog;
  Cfg->Work.emplace(1, std::vector<CpuWorkItem>{{"t_main", {}}});
  Cfg->Work.emplace(2, std::vector<CpuWorkItem>{{"t_main", {}}});
  return Cfg;
}

void exploreFig3(benchmark::State &State) {
  MachineConfigPtr Cfg = makeFig3Config();
  std::uint64_t Schedules = 0, States = 0;
  for (auto _ : State) {
    ExploreOptions Opts;
    Opts.FairnessBound = 2;
    Opts.MaxSteps = 256;
    ExploreResult Res = exploreMachine(Cfg, Opts);
    benchmark::DoNotOptimize(Res.SchedulesExplored);
    Schedules += Res.SchedulesExplored;
    States += Res.StatesExplored;
  }
  State.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(Schedules), benchmark::Counter::kIsRate);
  State.counters["states/s"] = benchmark::Counter(
      static_cast<double>(States), benchmark::Counter::kIsRate);
}
BENCHMARK(exploreFig3)->Name("Explorer/fig3_all_schedules")
    ->Unit(benchmark::kMillisecond);

void certifyTicket(benchmark::State &State) {
  std::uint64_t Obligations = 0;
  for (auto _ : State) {
    HarnessOutcome Out = certifyTicketLock(2);
    benchmark::DoNotOptimize(Out.Report.Holds);
    Obligations += Out.Report.ObligationsChecked;
  }
  State.counters["obligations/s"] = benchmark::Counter(
      static_cast<double>(Obligations), benchmark::Counter::kIsRate);
}
BENCHMARK(certifyTicket)->Name("Refinement/ticket_lock_full")
    ->Unit(benchmark::kMillisecond);

/// Ablation: how the fairness bound (the finite stand-in for the paper's
/// fair-scheduler assumption) scales the schedule space — the knob that
/// trades verification coverage against wall-clock.
void fairnessAblation(benchmark::State &State) {
  MachineConfigPtr Cfg = makeFig3Config();
  std::uint64_t Schedules = 0;
  for (auto _ : State) {
    ExploreOptions Opts;
    Opts.FairnessBound = static_cast<unsigned>(State.range(0));
    Opts.MaxSteps = 512;
    ExploreResult Res = exploreMachine(Cfg, Opts);
    benchmark::DoNotOptimize(Res.Ok);
    Schedules += Res.SchedulesExplored;
  }
  State.counters["schedules"] = benchmark::Counter(
      static_cast<double>(Schedules) /
      static_cast<double>(State.iterations()));
}
BENCHMARK(fairnessAblation)
    ->Name("Explorer/fairness_ablation")
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void strategySim(benchmark::State &State) {
  // The §2 Def 2.1 check under a scripted contended environment.
  std::uint64_t Obligations = 0;
  for (auto _ : State) {
    auto Impl = makeAtomicCallStrategy(1, "hold", {}, [](const Log &) {
      return std::optional<std::int64_t>(0);
    });
    auto Spec = makeAtomicCallStrategy(1, "acq", {}, [](const Log &) {
      return std::optional<std::int64_t>(0);
    });
    EventMap R("R1", [](const Event &E) -> std::optional<Event> {
      if (E.Kind == "hold")
        return Event(E.Tid, "acq");
      return E;
    });
    auto Env = makeNullEnv();
    SimReport Rep = checkStrategySimulation(*Impl, *Spec, R, *Env);
    benchmark::DoNotOptimize(Rep.Holds);
    Obligations += Rep.Obligations;
  }
  State.counters["obligations/s"] = benchmark::Counter(
      static_cast<double>(Obligations), benchmark::Counter::kIsRate);
}
BENCHMARK(strategySim)->Name("Simulation/def21_atomic");

} // namespace

BENCHMARK_MAIN();
