//===- bench/bench_qlock_crossover.cpp - Spin vs sleep crossover (§5.4) ----------===//
//
// The queuing lock's reason to exist (§5.4): "waiting threads are put to
// sleep to avoid busy spinning."  Sleeping costs more per handoff, but
// under long critical sections or more threads than cores, spinning
// wastes whole time slices.  This bench sweeps the critical-section
// length (Arg(0), in busy-loop iterations) at 2x-oversubscribed thread
// counts; the shape to check is a crossover: the ticket spinlock wins for
// tiny critical sections, the queuing lock wins as they grow.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtQueuingLock.h"
#include "runtime/RtTicketLock.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace ccal::rt;

namespace {

TicketLock<false> SpinLock;
QueuingLock SleepLock;
volatile long Sink = 0;

void busyWork(long Iters) {
  for (long I = 0; I != Iters; ++I)
    Sink = Sink + 1;
}

unsigned oversubscribedThreads() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW * 2 : 8;
}

void spinLockCs(benchmark::State &State) {
  long CsLen = State.range(0);
  for (auto _ : State) {
    SpinLock.acquire();
    busyWork(CsLen);
    SpinLock.release();
  }
}

void sleepLockCs(benchmark::State &State) {
  long CsLen = State.range(0);
  for (auto _ : State) {
    SleepLock.acquire();
    busyWork(CsLen);
    SleepLock.release();
  }
}

} // namespace

BENCHMARK(spinLockCs)
    ->Name("Spin(ticket)/oversubscribed")
    ->Arg(1)
    ->Arg(256)
    ->Arg(8192)
    ->Threads(static_cast<int>(oversubscribedThreads()))
    ->UseRealTime();

BENCHMARK(sleepLockCs)
    ->Name("Sleep(queuing)/oversubscribed")
    ->Arg(1)
    ->Arg(256)
    ->Arg(8192)
    ->Threads(static_cast<int>(oversubscribedThreads()))
    ->UseRealTime();

BENCHMARK_MAIN();
