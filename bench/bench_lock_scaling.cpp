//===- bench/bench_lock_scaling.cpp - Ticket vs MCS under contention -------------===//
//
// The reason the paper verifies an MCS lock at all (§6, Kim et al.): under
// contention, every ticket-lock waiter spins on the shared "now serving"
// line while MCS waiters spin on their own nodes.  This bench sweeps the
// thread count for both locks; the shape to check (EXPERIMENTS.md) is that
// the ticket lock's per-operation cost grows faster with contention than
// the MCS lock's.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtMcsLock.h"
#include "runtime/RtTicketLock.h"

#include <benchmark/benchmark.h>

using namespace ccal::rt;

namespace {

TicketLock<false> SharedTicket;
McsLock<false> SharedMcs;
long ProtectedCounter = 0;

void ticketContended(benchmark::State &State) {
  for (auto _ : State) {
    SharedTicket.acquire();
    benchmark::DoNotOptimize(ProtectedCounter += 1);
    SharedTicket.release();
  }
}
BENCHMARK(ticketContended)
    ->Name("TicketLock/contended")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

void mcsContended(benchmark::State &State) {
  for (auto _ : State) {
    McsNode Node;
    SharedMcs.acquire(Node);
    benchmark::DoNotOptimize(ProtectedCounter += 1);
    SharedMcs.release(Node);
  }
}
BENCHMARK(mcsContended)
    ->Name("McsLock/contended")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
