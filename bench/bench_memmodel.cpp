//===- bench/bench_memmodel.cpp - Memory model throughput -------------------------===//
//
// Measures the two memory models: push/pull replay (Fig. 8) as the log
// grows, and Fig. 12 algebraic composition at increasing block counts.
// These are the inner loops of every refinement check, so their costs set
// the verification wall-clock in Table 2's analogue.
//
//===----------------------------------------------------------------------===//

#include "mem/AlgebraicMemory.h"
#include "mem/PushPull.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace ccal;

namespace {

void pushPullReplay(benchmark::State &State) {
  PushPullModel Model;
  PushPullModel::Location Cell;
  Cell.Loc = 0;
  Cell.LocalBase = 0;
  Cell.Size = 4;
  Model.addLocation(Cell);

  Log L;
  std::int64_t Len = State.range(0);
  for (std::int64_t I = 0; I != Len / 2; ++I) {
    ThreadId T = static_cast<ThreadId>(I % 3);
    logAppend(L, Event(T, PullEventKind, {0}));
    logAppend(L, Event(T, PushEventKind, {0, I, I + 1, I + 2, I + 3}));
  }
  for (auto _ : State) {
    std::optional<SharedMemState> S = Model.replay(L);
    benchmark::DoNotOptimize(S);
  }
  State.counters["events/s"] = benchmark::Counter(
      static_cast<double>(L.size()) *
          static_cast<double>(State.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(pushPullReplay)
    ->Name("PushPull/replay")
    ->Arg(16)
    ->Arg(128)
    ->Arg(1024);

void algMemCompose(benchmark::State &State) {
  Rng R(42);
  unsigned Blocks = static_cast<unsigned>(State.range(0));
  AlgMem A, B;
  for (unsigned I = 0; I != Blocks; ++I) {
    if (R.chance(1, 2)) {
      A.alloc(0, 4);
      B.liftnb(1);
    } else {
      A.liftnb(1);
      B.alloc(0, 4);
    }
  }
  for (auto _ : State) {
    std::optional<AlgMem> M = AlgMem::compose(A, B);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(algMemCompose)
    ->Name("AlgMem/compose")
    ->Arg(8)
    ->Arg(64)
    ->Arg(512);

void algMemAxiomSweep(benchmark::State &State) {
  Rng R(7);
  AlgMem A, B;
  for (unsigned I = 0; I != 32; ++I) {
    if (R.chance(1, 2)) {
      A.alloc(0, 2);
      B.liftnb(1);
    } else {
      A.liftnb(1);
      B.alloc(0, 2);
    }
  }
  std::uint64_t Checks = 0;
  for (auto _ : State) {
    bool Ok = memaxioms::checkNb(A, B) && memaxioms::checkComm(A, B) &&
              memaxioms::checkSt(A, B, MemLoc{3, 0}, 9) &&
              memaxioms::checkAlloc(A, B, 0, 4) &&
              memaxioms::checkLiftR(A, B, 3) &&
              memaxioms::checkLiftL(A, B, 3);
    benchmark::DoNotOptimize(Ok);
    Checks += 6;
  }
  State.counters["axioms/s"] = benchmark::Counter(
      static_cast<double>(Checks), benchmark::Counter::kIsRate);
}
BENCHMARK(algMemAxiomSweep)->Name("AlgMem/fig12_axioms");

} // namespace

BENCHMARK_MAIN();
