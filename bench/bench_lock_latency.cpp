//===- bench/bench_lock_latency.cpp - §6's lock-latency experiment ---------------===//
//
// Regenerates the paper's performance observation (§6): "Initially, the
// ticket lock implementation incurred a latency of 87 CPU cycles in the
// single core case ... we forgot to remove some function calls to
// 'logical primitives' used for manipulating ghost abstract states.
// After we removed these extra null calls, the latency dropped down to
// only 35 CPU cycles."
//
// We measure single-thread acquire+release latency of the ticket and MCS
// locks with the ghost logical-primitive calls compiled in vs compiled
// out.  Absolute cycle counts differ from a 2011 i7; the *shape* —
// removing ghost calls cuts latency by roughly 2-3x — is the result.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "runtime/RtMcsLock.h"
#include "runtime/RtObserved.h"
#include "runtime/RtTicketLock.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>
#include <vector>

using namespace ccal::rt;

namespace {

void ticketWithGhost(benchmark::State &State) {
  TicketLock<true> Lock;
  for (auto _ : State) {
    Lock.acquire();
    Lock.release();
  }
  threadGhostLog().clear();
}
BENCHMARK(ticketWithGhost)->Name("TicketLock/ghost_calls_in");

void ticketNoGhost(benchmark::State &State) {
  TicketLock<false> Lock;
  for (auto _ : State) {
    Lock.acquire();
    Lock.release();
  }
}
BENCHMARK(ticketNoGhost)->Name("TicketLock/ghost_calls_removed");

void mcsWithGhost(benchmark::State &State) {
  McsLock<true> Lock;
  for (auto _ : State) {
    McsNode Node;
    Lock.acquire(Node);
    Lock.release(Node);
  }
  threadGhostLog().clear();
}
BENCHMARK(mcsWithGhost)->Name("McsLock/ghost_calls_in");

void mcsNoGhost(benchmark::State &State) {
  McsLock<false> Lock;
  for (auto _ : State) {
    McsNode Node;
    Lock.acquire(Node);
    Lock.release(Node);
  }
}
BENCHMARK(mcsNoGhost)->Name("McsLock/ghost_calls_removed");

/// One BENCH_locks.json row: the acquire-latency distribution of one
/// observed-lock configuration plus the ghost-log contention view.
struct LockRow {
  std::string Name;
  unsigned Threads = 0;
  ccal::obs::HistogramData Hist;
  GhostStats Ghost; ///< summed over participating threads (ghost builds)
};

/// Single-thread latency distribution through the observed wrapper; \p
/// Ghost regenerates §6's in/out comparison on the histogram too.
template <bool Ghost> LockRow measureTicket(const std::string &Name,
                                            std::uint64_t Iters) {
  threadGhostLog().clear();
  ObservedTicketLock<Ghost> Lock(Name);
  for (std::uint64_t I = 0; I != Iters; ++I) {
    Lock.acquire();
    Lock.release();
  }
  LockRow Row;
  Row.Name = Name;
  Row.Threads = 1;
  Row.Hist = ccal::obs::histData(Name + ".acquire_ns");
  Row.Ghost = ghostStats(threadGhostLog());
  threadGhostLog().clear();
  return Row;
}

template <bool Ghost> LockRow measureMcs(const std::string &Name,
                                         std::uint64_t Iters) {
  threadGhostLog().clear();
  ObservedMcsLock<Ghost> Lock(Name);
  for (std::uint64_t I = 0; I != Iters; ++I) {
    McsNode Node;
    Lock.acquire(Node);
    Lock.release(Node);
  }
  LockRow Row;
  Row.Name = Name;
  Row.Threads = 1;
  Row.Hist = ccal::obs::histData(Name + ".acquire_ns");
  Row.Ghost = ghostStats(threadGhostLog());
  threadGhostLog().clear();
  return Row;
}

/// Contended runs: \p Threads workers hammer one lock; contention counts
/// are reconstructed from each worker's own ghost log and summed.
LockRow measureTicketContended(const std::string &Name, unsigned Threads,
                               std::uint64_t ItersPerThread) {
  ObservedTicketLock<true> Lock(Name);
  std::vector<GhostStats> PerThread(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      threadGhostLog().clear();
      for (std::uint64_t I = 0; I != ItersPerThread; ++I) {
        Lock.acquire();
        Lock.release();
      }
      PerThread[T] = ghostStats(threadGhostLog());
      threadGhostLog().clear();
    });
  for (std::thread &W : Workers)
    W.join();
  LockRow Row;
  Row.Name = Name;
  Row.Threads = Threads;
  Row.Hist = ccal::obs::histData(Name + ".acquire_ns");
  for (const GhostStats &S : PerThread) {
    Row.Ghost.Acquires += S.Acquires;
    Row.Ghost.Contended += S.Contended;
    Row.Ghost.SpinObservations += S.SpinObservations;
  }
  return Row;
}

LockRow measureMcsContended(const std::string &Name, unsigned Threads,
                            std::uint64_t ItersPerThread) {
  ObservedMcsLock<true> Lock(Name);
  std::vector<GhostStats> PerThread(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      threadGhostLog().clear();
      for (std::uint64_t I = 0; I != ItersPerThread; ++I) {
        McsNode Node;
        Lock.acquire(Node);
        Lock.release(Node);
      }
      PerThread[T] = ghostStats(threadGhostLog());
      threadGhostLog().clear();
    });
  for (std::thread &W : Workers)
    W.join();
  LockRow Row;
  Row.Name = Name;
  Row.Threads = Threads;
  Row.Hist = ccal::obs::histData(Name + ".acquire_ns");
  for (const GhostStats &S : PerThread) {
    Row.Ghost.Acquires += S.Acquires;
    Row.Ghost.Contended += S.Contended;
    Row.Ghost.SpinObservations += S.SpinObservations;
  }
  return Row;
}

/// Writes BENCH_locks.json: per-configuration acquire-latency quantiles
/// (from the obs histograms the observed wrappers feed) and ghost-derived
/// contention counts — the registry-backed companion to the cycle-count
/// benchmarks below.
void emitLockJson() {
  bool WasEnabled = ccal::obs::enabled();
  ccal::obs::setEnabled(true);
  ccal::obs::metricsReset();

  constexpr std::uint64_t Iters = 50000;
  constexpr std::uint64_t ContendedIters = 10000;
  unsigned Hw = std::thread::hardware_concurrency();
  unsigned ContendedThreads = Hw >= 4 ? 4 : (Hw >= 2 ? 2 : 1);

  std::vector<LockRow> Rows;
  Rows.push_back(measureTicket<true>("ticket.ghost", Iters));
  Rows.push_back(measureTicket<false>("ticket.noghost", Iters));
  Rows.push_back(measureMcs<true>("mcs.ghost", Iters));
  Rows.push_back(measureMcs<false>("mcs.noghost", Iters));
  Rows.push_back(measureTicketContended("ticket.contended",
                                        ContendedThreads, ContendedIters));
  Rows.push_back(
      measureMcsContended("mcs.contended", ContendedThreads, ContendedIters));

  std::FILE *F = std::fopen("BENCH_locks.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot open BENCH_locks.json\n");
    ccal::obs::metricsReset();
    ccal::obs::setEnabled(WasEnabled);
    return;
  }
  std::fprintf(F, "{\n");
  std::fprintf(F, "  \"bench\": \"lock_acquire_latency\",\n");
  std::fprintf(F, "  \"hardware_threads\": %u,\n", Hw);
  std::fprintf(F, "  \"locks\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const LockRow &Row = Rows[I];
    double MeanNs = Row.Hist.Count
                        ? static_cast<double>(Row.Hist.Sum) /
                              static_cast<double>(Row.Hist.Count)
                        : 0.0;
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"threads\": %u, \"acquires\": %llu, "
        "\"mean_ns\": %.1f, \"p50_ns\": %llu, \"p90_ns\": %llu, "
        "\"p99_ns\": %llu, \"max_ns\": %llu, "
        "\"ghost_acquires\": %llu, \"ghost_contended\": %llu, "
        "\"ghost_spin_observations\": %llu}%s\n",
        Row.Name.c_str(), Row.Threads,
        static_cast<unsigned long long>(Row.Hist.Count), MeanNs,
        static_cast<unsigned long long>(Row.Hist.quantile(0.5)),
        static_cast<unsigned long long>(Row.Hist.quantile(0.9)),
        static_cast<unsigned long long>(Row.Hist.quantile(0.99)),
        static_cast<unsigned long long>(Row.Hist.Max),
        static_cast<unsigned long long>(Row.Ghost.Acquires),
        static_cast<unsigned long long>(Row.Ghost.Contended),
        static_cast<unsigned long long>(Row.Ghost.SpinObservations),
        I + 1 != Rows.size() ? "," : "");
    std::fprintf(stderr,
                 "lock latency: %-16s threads=%u p50=%lluns p99=%lluns "
                 "contended=%llu/%llu\n",
                 Row.Name.c_str(), Row.Threads,
                 static_cast<unsigned long long>(Row.Hist.quantile(0.5)),
                 static_cast<unsigned long long>(Row.Hist.quantile(0.99)),
                 static_cast<unsigned long long>(Row.Ghost.Contended),
                 static_cast<unsigned long long>(Row.Ghost.Acquires));
  }
  std::fprintf(F, "  ]\n");
  std::fprintf(F, "}\n");
  std::fclose(F);
  ccal::obs::metricsReset();
  ccal::obs::setEnabled(WasEnabled);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  emitLockJson();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
