//===- bench/bench_lock_latency.cpp - §6's lock-latency experiment ---------------===//
//
// Regenerates the paper's performance observation (§6): "Initially, the
// ticket lock implementation incurred a latency of 87 CPU cycles in the
// single core case ... we forgot to remove some function calls to
// 'logical primitives' used for manipulating ghost abstract states.
// After we removed these extra null calls, the latency dropped down to
// only 35 CPU cycles."
//
// We measure single-thread acquire+release latency of the ticket and MCS
// locks with the ghost logical-primitive calls compiled in vs compiled
// out.  Absolute cycle counts differ from a 2011 i7; the *shape* —
// removing ghost calls cuts latency by roughly 2-3x — is the result.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtMcsLock.h"
#include "runtime/RtTicketLock.h"

#include <benchmark/benchmark.h>

using namespace ccal::rt;

namespace {

void ticketWithGhost(benchmark::State &State) {
  TicketLock<true> Lock;
  for (auto _ : State) {
    Lock.acquire();
    Lock.release();
  }
  threadGhostLog().clear();
}
BENCHMARK(ticketWithGhost)->Name("TicketLock/ghost_calls_in");

void ticketNoGhost(benchmark::State &State) {
  TicketLock<false> Lock;
  for (auto _ : State) {
    Lock.acquire();
    Lock.release();
  }
}
BENCHMARK(ticketNoGhost)->Name("TicketLock/ghost_calls_removed");

void mcsWithGhost(benchmark::State &State) {
  McsLock<true> Lock;
  for (auto _ : State) {
    McsNode Node;
    Lock.acquire(Node);
    Lock.release(Node);
  }
  threadGhostLog().clear();
}
BENCHMARK(mcsWithGhost)->Name("McsLock/ghost_calls_in");

void mcsNoGhost(benchmark::State &State) {
  McsLock<false> Lock;
  for (auto _ : State) {
    McsNode Node;
    Lock.acquire(Node);
    Lock.release(Node);
  }
}
BENCHMARK(mcsNoGhost)->Name("McsLock/ghost_calls_removed");

} // namespace

BENCHMARK_MAIN();
