//===- bench/bench_audit_hammer.cpp - Audit recorder/checker hammer ----------===//
//
// The trace auditor's end-to-end exercise and its honesty check, in one
// binary.  For each real runtime object (ticket, MCS, queuing lock;
// shared queue over ticket and over MCS) it hammers the object from many
// threads in barrier-separated rounds — the joins between rounds are the
// quiescent cuts that keep audit windows bounded — records on the order
// of a million operations, audits the cumulative trace (which must PASS),
// and measures recorder overhead by running the identical workload with
// recording on and off at a thread count capped to the hardware
// concurrency (the budget: enabled within 15% of disabled).
// Then it hammers RtBrokenLock, whose torn ticket grab is a seeded
// mutual-exclusion bug, until a duplicate ticket lands in the trace; the
// auditor must refute that trace with a concrete witness window.  A
// hammer where the broken lock PASSes or a real lock FAILs exits
// nonzero: CI treats either as a broken auditor.
//
// Results go to stdout (human table) and BENCH_audit.json (machine).
//
//   bench_audit_hammer [--ops N] [--threads N] [--json PATH] [--quick]
//
//===----------------------------------------------------------------------===//

#include "audit/AuditChecker.h"
#include "audit/Recorder.h"
#include "audit/Trace.h"
#include "runtime/RtBrokenLock.h"
#include "runtime/RtMcsLock.h"
#include "runtime/RtQueuingLock.h"
#include "runtime/RtSharedQueue.h"
#include "runtime/RtTicketLock.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace ccal;
using namespace ccal::audit;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Per-operation client work (xorshift64 rounds), done OUTSIDE the object
/// ops.  The overhead comparison is meaningless on a bare ping-pong loop:
/// with literally zero client work there is nothing to amortize two clock
/// reads against, and on an oversubscribed box the empty-loop baseline
/// sits in an artificial no-convoy regime no real workload sees.  The
/// payload models the work a client does per operation; overhead_pct is
/// recording's share of the whole op+work cycle.
std::uint64_t payloadWork(std::uint64_t X, int Iters) {
  for (int I = 0; I != Iters; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
  }
  return X;
}

/// Runs \p Rounds barrier-separated rounds of \p Threads persistent
/// workers, each doing \p Pairs iterations of \p PerOp per round.  When
/// \p Out is non-null the recorder is enabled and drained between rounds
/// (each join is a real-time quiescent cut); when null the same workload
/// runs with recording off.  Returns wall seconds of the hammer loop.
template <typename PerOpFn>
double hammer(int Threads, int Rounds, int Pairs, Trace *Out, PerOpFn PerOp) {
  audit::setEnabled(Out != nullptr);
  std::barrier Start(Threads + 1), End(Threads + 1);
  std::vector<std::thread> Ws;
  for (int T = 0; T != Threads; ++T)
    Ws.emplace_back([&, T] {
      for (int R = 0; R != Rounds; ++R) {
        Start.arrive_and_wait();
        for (int I = 0; I != Pairs; ++I)
          PerOp(T, I);
        End.arrive_and_wait();
      }
    });
  auto T0 = std::chrono::steady_clock::now();
  for (int R = 0; R != Rounds; ++R) {
    Start.arrive_and_wait();
    End.arrive_and_wait();
    if (Out) {
      Collected C = audit::collect();
      Out->Records.insert(Out->Records.end(), C.Records.begin(),
                          C.Records.end());
      Out->Dropped = C.DroppedTotal;
    }
  }
  double Secs = secondsSince(T0);
  for (std::thread &W : Ws)
    W.join();
  audit::setEnabled(false);
  return Secs;
}

struct ConfigResult {
  std::string Name;
  std::uint64_t OpsRecorded = 0;
  std::uint64_t OpsTimed = 0;
  double SecondsOn = 0, SecondsOff = 0;
  double AuditSeconds = 0;
  AuditReport Rep;

  double opsPerSecOn() const { return OpsTimed / SecondsOn; }
  double opsPerSecOff() const { return OpsTimed / SecondsOff; }
};

/// One config, two phases.  Capture: hammer with \p Threads threads
/// recording, then audit the cumulative trace — oversubscription is
/// WELCOME here, more preemption means nastier interleavings for the
/// checker.  Overhead: time the identical per-thread workload with
/// recording on and off at \p TimingThreads, which the caller caps at the
/// hardware concurrency — oversubscribed spin-lock timing measures the
/// scheduler's convoy behavior (a few extra in-critical-section
/// nanoseconds tip a FIFO lock on an oversubscribed core into
/// context-switch-per-handoff), not the recorder.
template <typename PerOpFn>
ConfigResult runConfig(const std::string &Name, const std::string &Spec,
                       int Threads, int TimingThreads, int Pairs,
                       std::uint64_t TargetOps, const AuditOptions &Opts,
                       PerOpFn PerOp) {
  auto RoundsFor = [&](int T) {
    return static_cast<int>((TargetOps + 2ull * T * Pairs - 1) /
                            (2ull * T * Pairs));
  };
  ConfigResult R;
  R.Name = Name;
  audit::resetForTest();

  Trace Tr;
  Tr.Spec = Spec;
  hammer(Threads, RoundsFor(Threads), Pairs, &Tr, PerOp);
  R.OpsRecorded = Tr.Records.size();

  auto T0 = std::chrono::steady_clock::now();
  R.Rep = auditTrace(Tr, Spec, Opts);
  R.AuditSeconds = secondsSince(T0);

  audit::resetForTest();
  Trace Scratch; // recorded and drained, then discarded: timing only
  Scratch.Spec = Spec;
  const int TimingRounds = RoundsFor(TimingThreads);
  R.SecondsOn = hammer(TimingThreads, TimingRounds, Pairs, &Scratch, PerOp);
  R.OpsTimed = Scratch.Records.size();
  R.SecondsOff = hammer(TimingThreads, TimingRounds, Pairs, nullptr, PerOp);
  return R;
}

void printRow(const ConfigResult &R) {
  double Overhead =
      100.0 * (R.opsPerSecOff() - R.opsPerSecOn()) / R.opsPerSecOff();
  std::printf("%-14s %-10s %9llu ops  %7.2f Mop/s on  %7.2f Mop/s off  "
              "%+6.1f%%  windows=%llu max=%llu nodes=%llu audit=%.2fs\n",
              R.Name.c_str(), outcomeName(R.Rep.Outcome),
              static_cast<unsigned long long>(R.OpsRecorded),
              R.opsPerSecOn() / 1e6, R.opsPerSecOff() / 1e6, Overhead,
              static_cast<unsigned long long>(R.Rep.Windows),
              static_cast<unsigned long long>(R.Rep.MaxWindowSeen),
              static_cast<unsigned long long>(R.Rep.NodesExplored),
              R.AuditSeconds);
  if (R.Rep.Outcome != AuditOutcome::Pass)
    std::printf("  detail: %s\n", R.Rep.Detail.c_str());
}

} // namespace

int main(int argc, char **argv) {
  std::uint64_t TargetOps = 1'000'000;
  int Threads = 8;
  int PayloadIters = 1500;
  std::string JsonPath = "BENCH_audit.json";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--ops")
      TargetOps = std::strtoull(Next("--ops"), nullptr, 10);
    else if (A == "--threads")
      Threads = std::atoi(Next("--threads"));
    else if (A == "--json")
      JsonPath = Next("--json");
    else if (A == "--payload")
      PayloadIters = std::atoi(Next("--payload"));
    else if (A == "--quick")
      TargetOps = 100'000;
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", A.c_str());
      return 2;
    }
  }
  if (Threads < 2)
    Threads = 2;
  // Timing never oversubscribes: overhead measured with more runnable
  // threads than cores reports the scheduler's spin-lock convoy dynamics
  // (wildly bimodal), not the recorder's cost.
  const int HwThreads =
      std::max(1u, std::thread::hardware_concurrency());
  const int TimingThreads = std::min(Threads, HwThreads);

  // Round geometry: each pair records 2 ops; window size is bounded by
  // 2*Threads*Pairs.  Locks search near-greedily (the ticket/holder
  // discipline pins the order), so big windows are cheap; the queue's
  // search branches more, so its rounds are shorter.
  const int LockPairs = 2000, QueuePairs = 250;
  AuditOptions Opts;
  Opts.MaxNodesPerWindow = 1u << 24;
  Opts.MaxWindowOps = 1u << 17;

  std::vector<ConfigResult> Results;
  // Per-thread payload accumulators, cacheline-padded and consumed at the
  // end so the work cannot be optimized away.
  std::vector<std::uint64_t> Sink(static_cast<std::size_t>(Threads) * 8, 1);
  auto Work = [&](int T, int I) {
    std::uint64_t &S = Sink[static_cast<std::size_t>(T) * 8];
    S = payloadWork(S + I + 1, PayloadIters);
  };

  {
    rt::TicketLock<false> L;
    Results.push_back(runConfig("ticket", "ticket", Threads, TimingThreads,
                                LockPairs, TargetOps, Opts,
                                [&](int T, int I) {
                                  L.acquire();
                                  L.release();
                                  Work(T, I);
                                }));
  }
  {
    rt::McsLock<false> L;
    Results.push_back(runConfig("mcs", "lock", Threads, TimingThreads,
                                LockPairs, TargetOps, Opts, [&](int T, int I) {
                                  rt::McsNode N;
                                  L.acquire(N);
                                  L.release(N);
                                  Work(T, I);
                                }));
  }
  {
    rt::QueuingLock L;
    Results.push_back(runConfig("qlock", "lock", Threads, TimingThreads,
                                LockPairs, TargetOps, Opts,
                                [&](int T, int I) {
                                  L.acquire();
                                  L.release();
                                  Work(T, I);
                                }));
  }
  {
    rt::SharedQueue<rt::TicketLock<false, false>> Q;
    Results.push_back(runConfig("queue_ticket", "queue", Threads,
                                TimingThreads, QueuePairs, TargetOps, Opts,
                                [&](int T, int I) {
                                  Q.enqueue(T * 1000000 + I);
                                  Work(T, I);
                                  (void)Q.dequeue();
                                }));
  }
  {
    rt::SharedQueue<rt::McsLock<false, false>> Q;
    Results.push_back(runConfig("queue_mcs", "queue", Threads, TimingThreads,
                                QueuePairs, TargetOps, Opts,
                                [&](int T, int I) {
                                  Q.enqueue(T * 1000000 + I);
                                  Work(T, I);
                                  (void)Q.dequeue();
                                }));
  }

  std::uint64_t SinkSum = 0;
  for (std::uint64_t S : Sink)
    SinkSum += S;
  std::printf("audit hammer: %d threads (%d for timing, %d hw), target %llu "
              "ops/config, payload %d xorshift rounds/op (sink %llx)\n",
              Threads, TimingThreads, HwThreads,
              static_cast<unsigned long long>(TargetOps), PayloadIters,
              static_cast<unsigned long long>(SinkSum));
  bool Ok = true;
  for (const ConfigResult &R : Results) {
    printRow(R);
    if (R.Rep.Outcome != AuditOutcome::Pass)
      Ok = false;
    if (R.Rep.OpsAudited != R.OpsRecorded)
      Ok = false;
  }

  // The seeded-bug half: hammer RtBrokenLock until a duplicate ticket is
  // on record (the torn grab makes that near-certain within a few
  // rounds), then the auditor must FAIL the trace with a witness.
  audit::resetForTest();
  rt::BrokenTicketLock Broken;
  Trace BrokenTr;
  BrokenTr.Spec = "ticket";
  bool Duplicate = false;
  for (int Round = 0; Round != 500 && !Duplicate; ++Round) {
    hammer(Threads, 1, 200, &BrokenTr, [&Broken](int, int) {
      Broken.acquire();
      Broken.release();
    });
    std::map<std::int64_t, int> Tickets;
    for (const OpRecord &R : BrokenTr.Records)
      if (R.M == Method::Acq && ++Tickets[R.Ret] > 1)
        Duplicate = true;
  }
  auto T0 = std::chrono::steady_clock::now();
  AuditReport BrokenRep = auditTrace(BrokenTr, "ticket", Opts);
  double BrokenAuditSecs = secondsSince(T0);
  std::printf("%-14s %-10s %9llu ops  witness_window=%llu ops  audit=%.2fs\n"
              "  detail: %s\n",
              "broken_lock", outcomeName(BrokenRep.Outcome),
              static_cast<unsigned long long>(BrokenTr.Records.size()),
              static_cast<unsigned long long>(BrokenRep.WitnessOps.size()),
              BrokenAuditSecs, BrokenRep.Detail.c_str());
  if (!Duplicate) {
    std::printf("broken lock never tore a ticket grab — hammer too gentle\n");
    Ok = false;
  }
  if (BrokenRep.Outcome != AuditOutcome::Fail || BrokenRep.WitnessOps.empty())
    Ok = false;

  std::ofstream J(JsonPath);
  J << "{\n  \"bench\": \"audit_hammer\",\n";
  J << "  \"workload\": \"" << Threads
    << "-thread barrier-separated rounds recorded and audited offline; "
    << PayloadIters
    << " xorshift rounds of client work per op; overhead = recorder on vs "
       "off on the identical per-thread workload at "
    << TimingThreads << " threads (never oversubscribed)\",\n";
  J << "  \"hardware_threads\": " << HwThreads
    << ",\n  \"timing_threads\": " << TimingThreads << ",\n  \"configs\": [\n";
  for (std::size_t I = 0; I != Results.size(); ++I) {
    const ConfigResult &R = Results[I];
    double Overhead =
        100.0 * (R.opsPerSecOff() - R.opsPerSecOn()) / R.opsPerSecOff();
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"name\": \"%s\", \"outcome\": \"%s\", \"ops_recorded\": %llu, "
        "\"ops_audited\": %llu, \"windows\": %llu, \"max_window\": %llu, "
        "\"nodes\": %llu, \"audit_seconds\": %.3f, \"mops_on\": %.3f, "
        "\"mops_off\": %.3f, \"overhead_pct\": %.1f}%s\n",
        R.Name.c_str(), outcomeName(R.Rep.Outcome),
        static_cast<unsigned long long>(R.OpsRecorded),
        static_cast<unsigned long long>(R.Rep.OpsAudited),
        static_cast<unsigned long long>(R.Rep.Windows),
        static_cast<unsigned long long>(R.Rep.MaxWindowSeen),
        static_cast<unsigned long long>(R.Rep.NodesExplored), R.AuditSeconds,
        R.opsPerSecOn() / 1e6, R.opsPerSecOff() / 1e6, Overhead,
        I + 1 == Results.size() ? "" : ",");
    J << Buf;
  }
  J << "  ],\n";
  J << "  \"broken_lock\": {\"outcome\": \"" << outcomeName(BrokenRep.Outcome)
    << "\", \"ops_recorded\": " << BrokenTr.Records.size()
    << ", \"witness_window_ops\": " << BrokenRep.WitnessOps.size()
    << ", \"duplicate_ticket_seen\": " << (Duplicate ? "true" : "false")
    << "},\n";
  J << "  \"ok\": " << (Ok ? "true" : "false") << "\n}\n";
  J.close();
  std::printf("wrote %s\n", JsonPath.c_str());

  return Ok ? 0 : 1;
}
