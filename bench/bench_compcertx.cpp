//===- bench/bench_compcertx.cpp - Compiler pipeline throughput -------------------===//
//
// Measures the CompCertX analogue: parse+typecheck+compile+link
// throughput, interpreter vs compiled-VM execution speed, and per-case
// translation-validation cost.
//
//===----------------------------------------------------------------------===//

#include "compcertx/Linker.h"
#include "compcertx/Validate.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <benchmark/benchmark.h>

using namespace ccal;

namespace {

const char *const CollatzSrc = R"(
  int collatz(int n) {
    int steps = 0;
    while (n != 1 && steps < 500) {
      if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
      steps = steps + 1;
    }
    return steps;
  }
  int sweep(int lo, int hi) {
    int total = 0;
    int i = lo;
    while (i <= hi) {
      total = total + collatz(i);
      i = i + 1;
    }
    return total;
  }
)";

PrimHandler noPrims() {
  return [](const std::string &,
            const std::vector<std::int64_t> &) -> std::optional<std::int64_t> {
    return std::nullopt;
  };
}

void compilePipeline(benchmark::State &State) {
  for (auto _ : State) {
    ClightModule M = parseModuleOrDie("m", CollatzSrc);
    typeCheckOrDie(M);
    AsmProgramPtr P = compileAndLink("m.lasm", {&M});
    benchmark::DoNotOptimize(P->Funcs.size());
  }
  State.counters["modules/s"] =
      benchmark::Counter(static_cast<double>(State.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(compilePipeline)->Name("CompCertX/parse+check+compile+link");

void interpreterRun(benchmark::State &State) {
  ClightModule M = parseModuleOrDie("m", CollatzSrc);
  typeCheckOrDie(M);
  for (auto _ : State) {
    Interp I(M, noPrims());
    benchmark::DoNotOptimize(I.call("sweep", {1, State.range(0)}));
  }
}
BENCHMARK(interpreterRun)
    ->Name("CompCertX/reference_interpreter")
    ->Arg(30)
    ->Arg(100);

void vmRun(benchmark::State &State) {
  ClightModule M = parseModuleOrDie("m", CollatzSrc);
  typeCheckOrDie(M);
  AsmProgramPtr P = compileAndLink("m.lasm", {&M});
  for (auto _ : State) {
    VmRun Run =
        runVmSequential(P, "sweep", {1, State.range(0)}, noPrims());
    benchmark::DoNotOptimize(Run.Ret);
  }
}
BENCHMARK(vmRun)->Name("CompCertX/compiled_vm")->Arg(30)->Arg(100);

void translationValidation(benchmark::State &State) {
  ClightModule M = parseModuleOrDie("m", CollatzSrc);
  typeCheckOrDie(M);
  std::vector<ValidationCase> Cases;
  for (std::int64_t N = 1; N <= 20; ++N)
    Cases.push_back({"collatz", {N}});
  std::uint64_t Checked = 0;
  for (auto _ : State) {
    ValidationReport R = validateTranslation(M, Cases, [] {
      return [](const std::string &, const std::vector<std::int64_t> &)
                 -> std::optional<std::int64_t> { return 0; };
    });
    benchmark::DoNotOptimize(R.Ok);
    Checked += R.CasesChecked;
  }
  State.counters["cases/s"] = benchmark::Counter(
      static_cast<double>(Checked), benchmark::Counter::kIsRate);
}
BENCHMARK(translationValidation)->Name("CompCertX/translation_validation");

} // namespace

BENCHMARK_MAIN();
