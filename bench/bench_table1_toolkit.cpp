//===- bench/bench_table1_toolkit.cpp - Table 1: toolkit size --------------------===//
//
// Regenerates the *shape* of the paper's Table 1 ("Lines of proofs in Coq
// for the toolkit"): per-component sizes of this toolkit, mapped onto the
// same eight rows.  Our lines are C++ rather than Coq, so absolute numbers
// differ; the shape to compare (see EXPERIMENTS.md) is the *distribution*:
// linking machinery dominates, verifiers and the simulation library are
// comparatively small.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "support/Text.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

/// Counts non-empty, non-comment-only lines of one file.
std::uint64_t countLoc(const fs::path &File) {
  std::ifstream In(File);
  std::uint64_t N = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    std::string T = ccal::strTrim(Line);
    if (T.empty() || ccal::strStartsWith(T, "//"))
      continue;
    ++N;
  }
  return N;
}

std::uint64_t countDirLoc(const fs::path &Dir) {
  std::uint64_t N = 0;
  if (!fs::exists(Dir))
    return 0;
  for (const auto &Entry : fs::recursive_directory_iterator(Dir)) {
    if (!Entry.is_regular_file())
      continue;
    fs::path P = Entry.path();
    if (P.extension() == ".cpp" || P.extension() == ".h")
      N += countLoc(P);
  }
  return N;
}

} // namespace

int main() {
  fs::path Src = fs::path(CCAL_SOURCE_DIR) / "src";

  // Paper rows -> our components.
  struct Row {
    const char *Component;
    std::uint64_t PaperLoC; // Coq lines from Table 1
    std::vector<fs::path> Dirs;
  };
  std::vector<Row> Rows = {
      {"Auxiliary library", 6200, {Src / "support", Src / "mem"}},
      {"C verifier", 2200, {Src / "lang"}},
      {"Asm verifier", 800, {Src / "lasm"}},
      {"Simulation library", 1800, {Src / "core"}},
      {"Multilayer linking", 17000, {Src / "objects"}},
      {"Multithread linking", 10000, {Src / "threads"}},
      {"Multicore linking", 7000, {Src / "machine"}},
      {"Thread-safe CompCertX", 7500, {Src / "compcertx", Src / "runtime"}},
  };

  std::uint64_t OursTotal = 0, PaperTotal = 0;
  ccal::Table T("Table 1 (analogue): toolkit component sizes");
  T.addRow({"Component", "Paper (Coq LoC)", "ccal (C++ LoC)", "share"});
  std::vector<std::pair<std::uint64_t, std::uint64_t>> Pairs;
  for (const Row &R : Rows) {
    std::uint64_t N = 0;
    for (const fs::path &D : R.Dirs)
      N += countDirLoc(D);
    Pairs.emplace_back(R.PaperLoC, N);
    OursTotal += N;
    PaperTotal += R.PaperLoC;
  }
  for (size_t I = 0; I != Rows.size(); ++I) {
    T.addRow({Rows[I].Component, std::to_string(Pairs[I].first),
              std::to_string(Pairs[I].second),
              ccal::strFormat("%.1f%%", 100.0 *
                                            static_cast<double>(
                                                Pairs[I].second) /
                                            static_cast<double>(OursTotal))});
  }
  T.addRow({"TOTAL", std::to_string(PaperTotal), std::to_string(OursTotal),
            "100.0%"});
  std::printf("%s\n", T.render().c_str());
  std::printf("shape check: the three linking components together should "
              "dominate (paper: %.0f%%, ccal: %.0f%%)\n",
              100.0 * (17000 + 10000 + 7000) / PaperTotal,
              100.0 *
                  static_cast<double>(Pairs[4].second + Pairs[5].second +
                                      Pairs[6].second) /
                  static_cast<double>(OursTotal));
  return 0;
}
