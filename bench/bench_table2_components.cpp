//===- bench/bench_table2_components.cpp - Table 2: component statistics ---------===//
//
// Regenerates the paper's Table 2 ("Statistics for implemented
// components") in executable form.  The paper reports, per component, the
// sizes of the C&Asm source, the specification, the invariant proof, and
// the simulation proof.  Our analogue reports, per component: the ClightX
// implementation size, the number of atomic primitives in its overlay
// specification, and — in place of proof lines — the *checked evidence*:
// invariant checks performed, refinement obligations discharged, schedules
// and machine states explored, and wall-clock checking time.
//
// The shape to compare (EXPERIMENTS.md): lock components carry far more
// verification weight than the shared queue built on top of them, and the
// two locks are the heaviest rows, exactly as in the paper.
//
//===----------------------------------------------------------------------===//

#include "objects/LocalQueue.h"
#include "objects/McsLock.h"
#include "objects/SharedQueue.h"
#include "objects/TicketLock.h"
#include "support/Table.h"
#include "support/Text.h"
#include "threads/Linking.h"
#include "threads/QueuingLock.h"

#include <chrono>
#include <cstdio>

using namespace ccal;

namespace {

struct RowData {
  std::string Name;
  std::uint64_t ImplLoC = 0;
  std::uint64_t SpecPrims = 0;
  std::uint64_t Invariants = 0;
  std::uint64_t Obligations = 0;
  std::uint64_t Schedules = 0;
  std::uint64_t States = 0;
  double Millis = 0;
  bool Ok = false;
};

template <typename Fn> RowData timeRow(const std::string &Name, Fn Run) {
  auto Start = std::chrono::steady_clock::now();
  RowData Row = Run();
  auto End = std::chrono::steady_clock::now();
  Row.Name = Name;
  Row.Millis =
      std::chrono::duration<double, std::milli>(End - Start).count();
  return Row;
}

} // namespace

int main() {
  std::vector<RowData> Rows;

  Rows.push_back(timeRow("Ticket lock", [] {
    HarnessOutcome Out = certifyTicketLock(2, /*Rounds=*/1);
    RowData R;
    R.ImplLoC = Out.ImplLoC;
    R.SpecPrims = Out.SpecPrimCount;
    R.Obligations = Out.Report.ObligationsChecked;
    R.Schedules = Out.Report.SchedulesExplored;
    R.States = Out.Report.StatesExplored;
    R.Invariants = Out.Report.SchedulesExplored; // mutex checked per state
    R.Ok = Out.Report.Holds;
    return R;
  }));

  Rows.push_back(timeRow("MCS lock", [] {
    HarnessOutcome Out = certifyMcsLock(2, /*Rounds=*/1);
    RowData R;
    R.ImplLoC = Out.ImplLoC;
    R.SpecPrims = Out.SpecPrimCount;
    R.Obligations = Out.Report.ObligationsChecked;
    R.Schedules = Out.Report.SchedulesExplored;
    R.States = Out.Report.StatesExplored;
    R.Invariants = Out.Report.SchedulesExplored;
    R.Ok = Out.Report.Holds;
    return R;
  }));

  Rows.push_back(timeRow("Local queue", [] {
    RowData R;
    R.ImplLoC = moduleLoC(makeLocalQueueModule());
    R.SpecPrims = 6; // enQ/deQ/rmQ/q_len/q_head/init against the model
    std::uint64_t Checks = 0;
    bool Ok = true;
    for (std::uint64_t Seed = 1; Seed <= 8; ++Seed) {
      Ok &= runLocalQueueDifferential(Seed, 500, false).empty();
      Ok &= runLocalQueueDifferential(Seed, 500, true).empty();
      Checks += 1000;
    }
    R.Obligations = Checks;
    R.Schedules = 16; // differential runs
    R.Ok = Ok;
    return R;
  }));

  Rows.push_back(timeRow("Shared queue", [] {
    HarnessOutcome Out = certifySharedQueue(1, 1, 2);
    RowData R;
    R.ImplLoC = Out.ImplLoC;
    R.SpecPrims = Out.SpecPrimCount;
    R.Obligations = Out.Report.ObligationsChecked;
    R.Schedules = Out.Report.SchedulesExplored;
    R.States = Out.Report.StatesExplored;
    R.Ok = Out.Report.Holds;
    return R;
  }));

  Rows.push_back(timeRow("Scheduler", [] {
    LinkingSetup Setup;
    Setup.NumThreads = 3;
    Setup.Rounds = 3;
    LinkingReport Rep = checkMultithreadedLinking(Setup);
    RowData R;
    R.ImplLoC = moduleLoC(makeSchedModule()) +
                moduleLoC(makeLocalQueueModule());
    R.SpecPrims = 5; // yield/spawn/thread_exit/sleep/wakeup
    R.Obligations = Rep.Refinement.ObligationsChecked;
    R.Schedules = Rep.Refinement.SchedulesExplored;
    R.States = Rep.Refinement.StatesExplored;
    R.Ok = Rep.Refinement.Holds;
    return R;
  }));

  Rows.push_back(timeRow("Queuing lock", [] {
    QueuingLockOutcome Out = certifyQueuingLock(2, 1, 2);
    RowData R;
    R.ImplLoC = Out.ImplLoC;
    R.SpecPrims = 2; // acq_q/rel_q
    R.Obligations = Out.Report.ObligationsChecked;
    R.Schedules = Out.Report.SchedulesExplored;
    R.States = Out.Report.StatesExplored;
    R.Invariants = Out.Report.StatesExplored; // mutex marker replay
    R.Ok = Out.Report.Holds;
    return R;
  }));

  Table T("Table 2 (analogue): per-component verification statistics");
  T.addRow({"Component", "Impl LoC", "Spec prims", "Invariant checks",
            "Obligations", "Schedules", "States", "Time (ms)", "Result"});
  for (const RowData &R : Rows)
    T.addRow({R.Name, std::to_string(R.ImplLoC), std::to_string(R.SpecPrims),
              std::to_string(R.Invariants), std::to_string(R.Obligations),
              std::to_string(R.Schedules), std::to_string(R.States),
              strFormat("%.1f", R.Millis), R.Ok ? "VERIFIED" : "FAILED"});
  std::printf("%s\n", T.render().c_str());

  // Shape check mirroring §6's Table 2 discussion.
  double LockWork = Rows[0].Millis + Rows[1].Millis;
  double QueueWork = Rows[3].Millis;
  std::printf("shape check: lock verification cost / shared-queue cost = "
              "%.1fx (paper: lock proofs dwarf the queue built on them)\n",
              QueueWork > 0 ? LockWork / QueueWork : 0.0);
  bool AllOk = true;
  for (const RowData &R : Rows)
    AllOk &= R.Ok;
  return AllOk ? 0 : 1;
}
